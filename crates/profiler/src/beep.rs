//! The BEEP baseline profiler.
//!
//! BEEP is the profiling algorithm supported by the BEER reverse-engineering
//! methodology (Patel et al., MICRO 2020): it knows the on-die ECC
//! parity-check matrix and crafts data patterns intended to systematically
//! provoke post-correction errors. Following the paper's description
//! (§7.1.1), our implementation:
//!
//! * uses a standard random data pattern until the first post-correction
//!   error is confirmed (the *bootstrapping* phase);
//! * afterwards, treats the observed post-correction error positions as
//!   suspected at-risk bits and crafts patterns that *charge* a targeted
//!   combination of them while discharging all other data bits, so that if
//!   the targeted combination fails the decoder is forced into a
//!   miscorrection that exposes a new at-risk bit.
//!
//! The paper's replacement for the SAT-solver-driven pattern construction is
//! the same combination-targeting logic expressed directly over the
//! parity-check matrix (the constraints are linear; see DESIGN.md §2).
//! Crafted patterns deliberately discharge untargeted cells, which is exactly
//! why BEEP is slow at (and sometimes incapable of) achieving full coverage
//! of direct errors — the behaviour the paper reports in §7.2.1.

use std::collections::BTreeSet;

use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::pattern::{DataPattern, PatternSchedule};
use harp_memsim::ReadObservation;

use crate::checkpoint::ProfilerState;
use crate::traits::Profiler;

/// Crafts a BEEP test pattern: charge a targeted combination of the known
/// at-risk dataword positions and discharge every other data bit.
///
/// `iteration` selects which combination (pairs first, then triples) is
/// targeted, cycling deterministically so repeated calls explore different
/// combinations.
///
/// # Panics
///
/// Panics if any known position is not a data position of the code.
pub fn craft_beep_pattern<C: LinearBlockCode + ?Sized>(
    code: &C,
    known_at_risk: &[usize],
    iteration: usize,
) -> BitVec {
    let k = code.data_len();
    let known: Vec<usize> = {
        let unique: BTreeSet<usize> = known_at_risk.iter().copied().collect();
        for &pos in &unique {
            assert!(pos < k, "known at-risk position {pos} is not a data bit");
        }
        unique.into_iter().collect()
    };

    if known.is_empty() {
        // Nothing to target yet: a discharged word (the caller normally uses
        // the random schedule in this situation).
        return BitVec::zeros(k);
    }
    if known.len() == 1 {
        // A single suspected bit cannot form an uncorrectable combination by
        // itself; charge it and vary the remaining bits deterministically so
        // different parity-bit values are explored across iterations.
        let mut word = BitVec::zeros(k);
        word.set(known[0], true);
        for bit in 0..k {
            if bit != known[0] && (bit.wrapping_mul(31) ^ iteration).is_multiple_of(3) {
                word.set(bit, true);
            }
        }
        return word;
    }

    // Enumerate pairs (and, every other sweep, triples) of suspected bits.
    let mut combinations: Vec<Vec<usize>> = Vec::new();
    for i in 0..known.len() {
        for j in (i + 1)..known.len() {
            combinations.push(vec![known[i], known[j]]);
        }
    }
    if known.len() >= 3 {
        for i in 0..known.len() {
            for j in (i + 1)..known.len() {
                for l in (j + 1)..known.len() {
                    combinations.push(vec![known[i], known[j], known[l]]);
                }
            }
        }
    }
    let target = &combinations[iteration % combinations.len()];
    BitVec::from_indices(k, target.iter().copied())
}

/// The BEEP profiler: post-correction observation plus parity-check-matrix
/// guided pattern crafting.
///
/// # Example
///
/// ```
/// use harp_ecc::HammingCode;
/// use harp_memsim::pattern::DataPattern;
/// use harp_profiler::{BeepProfiler, Profiler};
///
/// let code = HammingCode::random(64, 4)?;
/// let mut profiler = BeepProfiler::new(code, DataPattern::Random, 9);
/// assert_eq!(profiler.name(), "BEEP");
/// // Before any error is confirmed, BEEP falls back to the random pattern.
/// let word = profiler.dataword_for_round(0);
/// assert_eq!(word.len(), 64);
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BeepProfiler<C: LinearBlockCode = harp_ecc::HammingCode> {
    code: C,
    schedule: PatternSchedule,
    identified: BTreeSet<usize>,
    crafted_iterations: usize,
}

impl<C: LinearBlockCode> BeepProfiler<C> {
    /// Creates a BEEP profiler for the given on-die ECC code.
    pub fn new(code: C, fallback_pattern: DataPattern, seed: u64) -> Self {
        let schedule = PatternSchedule::new(fallback_pattern, code.data_len(), seed);
        Self {
            code,
            schedule,
            identified: BTreeSet::new(),
            crafted_iterations: 0,
        }
    }

    /// Whether BEEP is still bootstrapping (no post-correction error
    /// confirmed yet).
    pub fn is_bootstrapping(&self) -> bool {
        self.identified.is_empty()
    }
}

impl<C: LinearBlockCode + Send> Profiler for BeepProfiler<C> {
    fn name(&self) -> &'static str {
        "BEEP"
    }

    fn dataword_for_round(&mut self, round: usize) -> BitVec {
        if self.identified.is_empty() {
            // Bootstrapping: standard random pattern until the first
            // post-correction error is confirmed.
            self.schedule.dataword_for_round(round)
        } else {
            let known: Vec<usize> = self.identified.iter().copied().collect();
            self.crafted_iterations += 1;
            craft_beep_pattern(&self.code, &known, self.crafted_iterations)
        }
    }

    fn observe_round(&mut self, _round: usize, observation: &ReadObservation) {
        self.identified.extend(observation.post_correction_errors());
    }

    fn identified(&self) -> &BTreeSet<usize> {
        &self.identified
    }

    fn uses_bypass_read(&self) -> bool {
        false
    }

    fn state(&self) -> ProfilerState {
        ProfilerState {
            identified: self.identified.clone(),
            observed_indirect: BTreeSet::new(),
            crafted_rounds: self.crafted_iterations,
        }
    }

    fn restore(&mut self, state: &ProfilerState) {
        self.identified = state.identified.clone();
        self.crafted_iterations = state.crafted_rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::analysis::FailureDependence;
    use harp_ecc::ErrorSpace;
    use harp_ecc::HammingCode;
    use harp_memsim::{FaultModel, MemoryChip};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_rounds(profiler: &mut dyn Profiler, chip: &mut MemoryChip, rounds: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            chip.write(0, &data);
            let obs = chip.read(0, &mut rng);
            profiler.observe_round(round, &obs);
        }
    }

    #[test]
    fn crafted_pattern_charges_only_the_target_combination() {
        let code = HammingCode::random(64, 15).unwrap();
        let known = [4usize, 10, 50];
        let pattern = craft_beep_pattern(&code, &known, 0);
        let ones: Vec<usize> = pattern.iter_ones().collect();
        assert_eq!(ones.len(), 2);
        for bit in ones {
            assert!(known.contains(&bit));
        }
    }

    #[test]
    fn crafted_patterns_cycle_through_combinations() {
        let code = HammingCode::random(64, 16).unwrap();
        let known = [1usize, 2, 3];
        let patterns: BTreeSet<String> = (0..6)
            .map(|i| craft_beep_pattern(&code, &known, i).to_string())
            .collect();
        // 3 pairs + 1 triple = 4 distinct combinations.
        assert_eq!(patterns.len(), 4);
    }

    #[test]
    fn single_known_bit_is_always_charged() {
        let code = HammingCode::random(64, 17).unwrap();
        for iteration in 0..5 {
            let pattern = craft_beep_pattern(&code, &[13], iteration);
            assert!(pattern.get(13));
        }
    }

    #[test]
    fn empty_known_set_yields_discharged_word() {
        let code = HammingCode::random(64, 18).unwrap();
        assert!(craft_beep_pattern(&code, &[], 3).is_zero());
    }

    #[test]
    #[should_panic(expected = "not a data bit")]
    fn crafting_rejects_parity_positions() {
        let code = HammingCode::random(64, 19).unwrap();
        craft_beep_pattern(&code, &[70], 0);
    }

    #[test]
    fn beep_bootstraps_with_the_fallback_pattern() {
        let code = HammingCode::random(64, 20).unwrap();
        let mut profiler = BeepProfiler::new(code, DataPattern::Random, 5);
        assert!(profiler.is_bootstrapping());
        let w0 = profiler.dataword_for_round(0);
        let w1 = profiler.dataword_for_round(1);
        assert_eq!(w0.not(), w1, "random schedule inverts within a pair");
    }

    #[test]
    fn beep_identifies_direct_errors_from_always_failing_pairs() {
        let code = HammingCode::random(64, 21).unwrap();
        let mut chip = MemoryChip::new(code.clone(), 1);
        chip.set_fault_model(0, FaultModel::uniform(&[8, 30], 1.0));
        let mut profiler = BeepProfiler::new(code, DataPattern::Random, 7);
        run_rounds(&mut profiler, &mut chip, 32, 8);
        assert!(!profiler.is_bootstrapping());
        assert!(profiler.identified().contains(&8));
        assert!(profiler.identified().contains(&30));
    }

    #[test]
    fn beep_only_reports_genuinely_at_risk_bits() {
        let code = HammingCode::random(64, 22).unwrap();
        let at_risk = [3usize, 12, 48];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut chip = MemoryChip::new(code.clone(), 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 0.75));
        let mut profiler = BeepProfiler::new(code, DataPattern::Random, 11);
        run_rounds(&mut profiler, &mut chip, 128, 9);
        for bit in profiler.identified() {
            assert!(
                space.post_correction_at_risk().contains(bit),
                "BEEP reported bit {bit} which is not at risk"
            );
        }
    }

    #[test]
    fn beep_can_miss_direct_bits_that_its_patterns_never_charge() {
        // Three at-risk bits with moderate error probability: once BEEP locks
        // onto the first observed pair it stops charging the rest of the
        // word, so a bit that has not failed yet may never be exposed.
        // (This is a behavioural regression test for the paper's §7.2.1
        // observation, not a universal guarantee, hence the fixed seed.)
        let code = HammingCode::random(64, 23).unwrap();
        let at_risk = [5usize, 23, 59];
        let mut chip = MemoryChip::new(code.clone(), 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 0.25));
        let mut profiler = BeepProfiler::new(code, DataPattern::Random, 13);
        run_rounds(&mut profiler, &mut chip, 64, 10);
        let covered = at_risk
            .iter()
            .filter(|b| profiler.identified().contains(b))
            .count();
        assert!(
            covered < at_risk.len(),
            "expected incomplete direct coverage for this configuration"
        );
    }
}
