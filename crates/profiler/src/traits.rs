//! The active-profiler interface and the profiler registry used by the
//! evaluation harness.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::pattern::DataPattern;
use harp_memsim::ReadObservation;

use crate::beep::BeepProfiler;
use crate::checkpoint::ProfilerState;
use crate::harp::{HarpABeepProfiler, HarpAProfiler, HarpUProfiler};
use crate::naive::NaiveProfiler;

/// A round-based active error profiler for a single ECC word.
///
/// Each profiling round, the campaign driver asks the profiler which dataword
/// to program ([`Profiler::dataword_for_round`]), performs the access, and
/// hands back the resulting [`ReadObservation`]. The profiler updates its set
/// of identified at-risk bits; which parts of the observation it is allowed
/// to consult is what distinguishes the algorithms:
///
/// | profiler | post-correction data | bypass (raw data bits) | knows `H` |
/// |----------|----------------------|------------------------|-----------|
/// | Naive    | ✔                    | ✘                      | ✘         |
/// | BEEP     | ✔                    | ✘                      | ✔         |
/// | HARP-U   | ✘ (not needed)       | ✔                      | ✘         |
/// | HARP-A   | ✘ (not needed)       | ✔                      | ✔         |
///
/// The trait is deliberately code-agnostic: profilers that need the on-die
/// ECC structure are generic over [`LinearBlockCode`], so the same lineup
/// runs against Hamming, SEC-DED, and BCH-protected words.
///
/// `Send` is a supertrait so boxed profilers can migrate across worker
/// threads inside resumable sweeps (the codes they capture are plain data);
/// `Debug` so resumable engines holding boxed profilers stay debuggable.
pub trait Profiler: Send + std::fmt::Debug {
    /// Short identifier used in reports (e.g. `"HARP-U"`).
    fn name(&self) -> &'static str;

    /// The dataword to program into the word for profiling round `round`.
    fn dataword_for_round(&mut self, round: usize) -> BitVec;

    /// Consumes the observation of round `round` and updates the identified
    /// at-risk bits.
    fn observe_round(&mut self, round: usize, observation: &ReadObservation);

    /// Dataword positions identified as at risk so far (these are the bits
    /// the profiler would record into the repair mechanism's error profile).
    fn identified(&self) -> &BTreeSet<usize>;

    /// Additional dataword positions the profiler *predicts* to be at risk
    /// without having observed them fail (only HARP-A produces predictions,
    /// by exploiting knowledge of the parity-check matrix).
    fn predicted(&self) -> BTreeSet<usize> {
        BTreeSet::new()
    }

    /// Whether the profiler reads raw data bits through the on-die-ECC
    /// decode-bypass path (the chip modification HARP requires, §5.2).
    fn uses_bypass_read(&self) -> bool;

    /// Union of identified and predicted at-risk bits.
    fn known_at_risk(&self) -> BTreeSet<usize> {
        self.identified()
            .union(&self.predicted())
            .copied()
            .collect()
    }

    /// Captures every mutable accumulator of the profiler, for campaign
    /// checkpointing. Derived state (e.g. HARP-A's predictions) is *not*
    /// captured; [`Profiler::restore`] recomputes it.
    fn state(&self) -> ProfilerState;

    /// Overwrites the profiler's accumulators with a previously captured
    /// state and recomputes any derived state, so that subsequent rounds
    /// behave exactly as if the profiler had accumulated `state` itself.
    fn restore(&mut self, state: &ProfilerState);
}

/// The profiling algorithms evaluated in the paper (§7.1.1), used as a
/// factory by the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfilerKind {
    /// Round-based testing with standard data patterns, observing
    /// post-correction errors only (represents the vast majority of prior
    /// profilers).
    Naive,
    /// BEEP: knows the parity-check matrix (via BEER reverse engineering) and
    /// crafts data patterns that provoke miscorrections.
    Beep,
    /// HARP-Unaware: bypass-read active profiling; no knowledge of `H`.
    HarpU,
    /// HARP-Aware: HARP-U plus precomputation of indirect-error at-risk bits
    /// from the identified direct-error bits.
    HarpA,
    /// HARP-A followed by BEEP-style pattern crafting to expose the indirect
    /// errors that HARP-A cannot predict (evaluated in Fig. 8).
    HarpABeep,
    /// HARP using the "syndrome on correction" transparency option instead of
    /// the decode-bypass read path (§5.2 option 1; ablation).
    HarpS,
}

impl ProfilerKind {
    /// All profiler kinds compared in the paper's evaluation, plus the
    /// HARP-S transparency ablation.
    pub const ALL: [ProfilerKind; 6] = [
        ProfilerKind::Naive,
        ProfilerKind::Beep,
        ProfilerKind::HarpU,
        ProfilerKind::HarpA,
        ProfilerKind::HarpABeep,
        ProfilerKind::HarpS,
    ];

    /// The three profilers compared in the active-phase evaluation (Fig. 6/7).
    pub const ACTIVE_BASELINES: [ProfilerKind; 3] =
        [ProfilerKind::HarpU, ProfilerKind::Naive, ProfilerKind::Beep];

    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ProfilerKind::Naive => "Naive",
            ProfilerKind::Beep => "BEEP",
            ProfilerKind::HarpU => "HARP-U",
            ProfilerKind::HarpA => "HARP-A",
            ProfilerKind::HarpABeep => "HARP-A+BEEP",
            ProfilerKind::HarpS => "HARP-S",
        }
    }

    /// The inverse of [`ProfilerKind::name`]: resolves a display name back to
    /// its kind. Used by checkpoint archives and CLI flags, which identify
    /// profilers by their paper names.
    pub fn from_name(name: &str) -> Option<ProfilerKind> {
        ProfilerKind::ALL
            .into_iter()
            .find(|kind| kind.name() == name)
    }

    /// Instantiates a profiler of this kind for one ECC word.
    ///
    /// `code` is the on-die ECC code (only consulted by the `H`-aware
    /// profilers), `pattern` the data-pattern family used for standard
    /// testing rounds, and `seed` the deterministic seed for random patterns.
    /// The factory is generic over the code, so every kind can be evaluated
    /// against any [`LinearBlockCode`] implementation.
    pub fn instantiate<C: LinearBlockCode + Clone + Send + 'static>(
        &self,
        code: &C,
        pattern: DataPattern,
        seed: u64,
    ) -> Box<dyn Profiler> {
        match self {
            ProfilerKind::Naive => Box::new(NaiveProfiler::new(code.data_len(), pattern, seed)),
            ProfilerKind::Beep => Box::new(BeepProfiler::new(code.clone(), pattern, seed)),
            ProfilerKind::HarpU => Box::new(HarpUProfiler::new(code.data_len(), pattern, seed)),
            ProfilerKind::HarpA => Box::new(HarpAProfiler::new(code.clone(), pattern, seed)),
            ProfilerKind::HarpABeep => {
                Box::new(HarpABeepProfiler::new(code.clone(), pattern, seed))
            }
            ProfilerKind::HarpS => Box::new(crate::syndrome::HarpSProfiler::new(
                code.data_len(),
                pattern,
                seed,
            )),
        }
    }
}

impl std::fmt::Display for ProfilerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(ProfilerKind::Naive.name(), "Naive");
        assert_eq!(ProfilerKind::Beep.name(), "BEEP");
        assert_eq!(ProfilerKind::HarpU.name(), "HARP-U");
        assert_eq!(ProfilerKind::HarpA.name(), "HARP-A");
        assert_eq!(ProfilerKind::HarpABeep.to_string(), "HARP-A+BEEP");
        assert_eq!(ProfilerKind::HarpS.name(), "HARP-S");
    }

    #[test]
    fn from_name_inverts_name_for_every_kind() {
        for kind in ProfilerKind::ALL {
            assert_eq!(ProfilerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ProfilerKind::from_name("HARP-X"), None);
    }

    #[test]
    fn all_kinds_can_be_instantiated() {
        let code = HammingCode::random(64, 1).unwrap();
        for kind in ProfilerKind::ALL {
            let profiler = kind.instantiate(&code, DataPattern::Random, 7);
            assert_eq!(profiler.name(), kind.name());
            assert!(profiler.identified().is_empty());
        }
    }

    #[test]
    fn all_kinds_instantiate_for_every_code_family() {
        // The factory is generic: the same lineup constructs against
        // SEC-DED and BCH codes.
        let secded = harp_ecc::ExtendedHammingCode::random(32, 2).unwrap();
        for kind in ProfilerKind::ALL {
            let profiler = kind.instantiate(&secded, DataPattern::Random, 7);
            assert_eq!(profiler.name(), kind.name());
        }
    }

    #[test]
    fn bypass_capability_matches_the_algorithm() {
        let code = HammingCode::random(64, 2).unwrap();
        let bypass: BitVec = ProfilerKind::ALL
            .iter()
            .map(|k| {
                k.instantiate(&code, DataPattern::Random, 0)
                    .uses_bypass_read()
            })
            .collect();
        // Naive and BEEP operate without the bypass path; the bypass-based
        // HARP variants use it; HARP-S relies on reported syndromes instead.
        assert_eq!(
            bypass,
            BitVec::from_bools(&[false, false, true, true, true, false])
        );
    }

    #[test]
    fn active_baselines_cover_fig6_lineup() {
        assert_eq!(ProfilerKind::ACTIVE_BASELINES.len(), 3);
        assert!(ProfilerKind::ACTIVE_BASELINES.contains(&ProfilerKind::Naive));
        assert!(ProfilerKind::ACTIVE_BASELINES.contains(&ProfilerKind::Beep));
        assert!(ProfilerKind::ACTIVE_BASELINES.contains(&ProfilerKind::HarpU));
    }
}
