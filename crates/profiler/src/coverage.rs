//! Coverage metrics: scoring a profiling campaign against the exact ground
//! truth of which bits are at risk.
//!
//! The paper's evaluation uses three per-word metrics, all reproduced here:
//!
//! * **direct-error coverage** (Fig. 6) — the fraction of bits at risk of
//!   direct error identified so far;
//! * **bootstrapping rounds** (Fig. 7) — the number of rounds until the
//!   profiler identifies its first direct-error bit;
//! * **missed indirect errors** (Fig. 8) and the **maximum number of
//!   simultaneous post-correction errors** still possible given the current
//!   profile (Fig. 9) — what reactive profiling / the secondary ECC must
//!   still handle.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use harp_ecc::ErrorSpace;

use crate::campaign::CampaignResult;

/// Fraction of the ground-truth direct-error at-risk bits contained in
/// `identified`. Returns 1.0 when there are no direct at-risk bits.
///
/// # Example
///
/// ```
/// use std::collections::BTreeSet;
/// use harp_profiler::coverage::direct_coverage;
///
/// let truth: BTreeSet<usize> = [1, 2, 3, 4].into_iter().collect();
/// let found: BTreeSet<usize> = [2, 4, 9].into_iter().collect();
/// assert_eq!(direct_coverage(&found, &truth), 0.5);
/// ```
pub fn direct_coverage(identified: &BTreeSet<usize>, direct_truth: &BTreeSet<usize>) -> f64 {
    if direct_truth.is_empty() {
        return 1.0;
    }
    let hit = identified.intersection(direct_truth).count();
    hit as f64 / direct_truth.len() as f64
}

/// Number of ground-truth indirect-error at-risk bits *not* contained in
/// `known` (identified or predicted) — the bits reactive profiling still has
/// to identify.
pub fn missed_indirect(known: &BTreeSet<usize>, indirect_truth: &BTreeSet<usize>) -> usize {
    indirect_truth.difference(known).count()
}

/// The first round (0-based) in which the profiler had identified at least
/// one ground-truth direct-error at-risk bit, or `None` if it never did.
///
/// This reproduces the bootstrapping metric of Fig. 7: profilers that rely on
/// post-correction errors must wait for a specific uncorrectable combination
/// to occur before they learn anything.
pub fn bootstrap_round(result: &CampaignResult, direct_truth: &BTreeSet<usize>) -> Option<usize> {
    if direct_truth.is_empty() {
        return Some(0);
    }
    result
        .snapshots
        .iter()
        .find(|s| s.identified.intersection(direct_truth).next().is_some())
        .map(|s| s.round)
}

/// Per-round coverage metrics for one (word, profiler) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageSeries {
    /// The profiler's display name.
    pub profiler: String,
    /// Direct-error coverage after each round (Fig. 6).
    pub direct_coverage: Vec<f64>,
    /// Missed indirect-error bits after each round (Fig. 8).
    pub missed_indirect: Vec<usize>,
    /// Maximum number of simultaneous post-correction errors still possible
    /// after each round, given that every *known* bit is repaired (Fig. 9).
    pub max_simultaneous: Vec<usize>,
    /// Round in which the first direct-error bit was identified (Fig. 7).
    pub bootstrap_round: Option<usize>,
    /// Number of ground-truth direct at-risk bits for this word.
    pub direct_truth_len: usize,
    /// Number of ground-truth indirect at-risk bits for this word.
    pub indirect_truth_len: usize,
}

impl CoverageSeries {
    /// Scores a campaign result against the ground-truth error space.
    pub fn from_campaign(result: &CampaignResult, space: &ErrorSpace) -> Self {
        let direct_truth = space.direct_at_risk();
        let indirect_truth = space.indirect_at_risk();
        let mut direct_cov = Vec::with_capacity(result.rounds());
        let mut missed = Vec::with_capacity(result.rounds());
        let mut max_sim = Vec::with_capacity(result.rounds());
        for snapshot in &result.snapshots {
            let known = snapshot.known();
            direct_cov.push(direct_coverage(&snapshot.identified, direct_truth));
            missed.push(missed_indirect(&known, indirect_truth));
            max_sim.push(space.max_simultaneous_errors_outside(&known));
        }
        Self {
            profiler: result.profiler.clone(),
            direct_coverage: direct_cov,
            missed_indirect: missed,
            max_simultaneous: max_sim,
            bootstrap_round: bootstrap_round(result, direct_truth),
            direct_truth_len: direct_truth.len(),
            indirect_truth_len: indirect_truth.len(),
        }
    }

    /// Number of rounds in the series.
    pub fn rounds(&self) -> usize {
        self.direct_coverage.len()
    }

    /// The first round (0-based) after which direct coverage reached 1.0, or
    /// `None` if it never did.
    pub fn rounds_to_full_direct_coverage(&self) -> Option<usize> {
        self.direct_coverage
            .iter()
            .position(|&c| (c - 1.0).abs() < f64::EPSILON)
    }

    /// The first round (0-based) after which no more than `limit`
    /// simultaneous post-correction errors remain possible, or `None`.
    pub fn rounds_until_max_simultaneous_at_most(&self, limit: usize) -> Option<usize> {
        self.max_simultaneous.iter().position(|&m| m <= limit)
    }

    /// Whether the series holds no rounds at all. An empty series carries no
    /// coverage information — distinguish it from a genuine zero-coverage
    /// run with [`CoverageSeries::checked_final_direct_coverage`].
    pub fn is_empty(&self) -> bool {
        self.direct_coverage.is_empty()
    }

    /// Direct coverage after the final round.
    ///
    /// **Caveat:** returns 0.0 when no rounds ran, which is indistinguishable
    /// from a genuine zero-coverage run. Aggregators that must tell the two
    /// apart (e.g. a merge coordinator validating shard completeness) should
    /// use [`CoverageSeries::checked_final_direct_coverage`] instead.
    pub fn final_direct_coverage(&self) -> f64 {
        self.checked_final_direct_coverage().unwrap_or(0.0)
    }

    /// Direct coverage after the final round, or `None` if no rounds ran —
    /// the unambiguous accessor behind
    /// [`CoverageSeries::final_direct_coverage`].
    pub fn checked_final_direct_coverage(&self) -> Option<f64> {
        self.direct_coverage.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::ProfilingCampaign;
    use crate::traits::ProfilerKind;
    use harp_ecc::HammingCode;
    use harp_memsim::pattern::DataPattern;
    use harp_memsim::FaultModel;

    fn series_for(
        kind: ProfilerKind,
        at_risk: &[usize],
        probability: f64,
        rounds: usize,
        seed: u64,
    ) -> CoverageSeries {
        let code = HammingCode::random(64, seed).unwrap();
        let campaign = ProfilingCampaign::new(
            code,
            FaultModel::uniform(at_risk, probability),
            DataPattern::Random,
            seed,
        );
        let space = campaign.error_space();
        let result = campaign.run(kind, rounds);
        CoverageSeries::from_campaign(&result, &space)
    }

    #[test]
    fn direct_coverage_edge_cases() {
        let empty = BTreeSet::new();
        let truth: BTreeSet<usize> = [1, 2].into_iter().collect();
        assert_eq!(direct_coverage(&empty, &empty), 1.0);
        assert_eq!(direct_coverage(&empty, &truth), 0.0);
        assert_eq!(direct_coverage(&truth, &truth), 1.0);
    }

    #[test]
    fn missed_indirect_counts_difference() {
        let known: BTreeSet<usize> = [1, 5].into_iter().collect();
        let truth: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
        assert_eq!(missed_indirect(&known, &truth), 2);
        assert_eq!(missed_indirect(&truth, &truth), 0);
    }

    #[test]
    fn harp_series_reaches_full_coverage_and_bounds_simultaneous_errors() {
        let series = series_for(ProfilerKind::HarpU, &[3, 19, 42, 61], 0.5, 32, 7);
        assert_eq!(series.direct_truth_len, 4);
        assert_eq!(series.final_direct_coverage(), 1.0);
        let full_round = series.rounds_to_full_direct_coverage().unwrap();
        // Once every direct bit is known, at most one simultaneous error
        // (an indirect one) remains possible.
        assert!(series.max_simultaneous[full_round] <= 1);
        assert!(series.rounds_until_max_simultaneous_at_most(1).unwrap() <= full_round);
        assert!(series.bootstrap_round.is_some());
        assert_eq!(series.rounds(), 32);
    }

    #[test]
    fn harp_bootstraps_faster_than_naive() {
        // With always-failing bits HARP identifies them in round 0; Naive
        // needs an uncorrectable pattern, which also happens immediately here,
        // so use p=0.5 where HARP still sees any failing bit raw while Naive
        // must wait for a *combination*.
        let harp = series_for(ProfilerKind::HarpU, &[3, 19, 42], 0.5, 64, 21);
        let naive = series_for(ProfilerKind::Naive, &[3, 19, 42], 0.5, 64, 21);
        let harp_boot = harp.bootstrap_round.expect("HARP must bootstrap");
        // When Naive never saw a direct error, HARP is trivially faster.
        if let Some(naive_boot) = naive.bootstrap_round {
            assert!(harp_boot <= naive_boot);
        }
    }

    #[test]
    fn naive_direct_coverage_is_monotonic_and_bounded() {
        let series = series_for(ProfilerKind::Naive, &[5, 23, 48, 60, 63], 0.5, 96, 9);
        for window in series.direct_coverage.windows(2) {
            assert!(window[1] >= window[0]);
        }
        for &c in &series.direct_coverage {
            assert!((0.0..=1.0).contains(&c));
        }
        for window in series.missed_indirect.windows(2) {
            assert!(window[1] <= window[0]);
        }
    }

    #[test]
    fn harp_a_leaves_fewer_missed_indirect_bits_than_harp_u() {
        let harp_u = series_for(ProfilerKind::HarpU, &[2, 11, 37, 58], 1.0, 16, 15);
        let harp_a = series_for(ProfilerKind::HarpA, &[2, 11, 37, 58], 1.0, 16, 15);
        let last = harp_u.rounds() - 1;
        assert!(
            harp_a.missed_indirect[last] <= harp_u.missed_indirect[last],
            "HARP-A ({}) should miss no more indirect bits than HARP-U ({})",
            harp_a.missed_indirect[last],
            harp_u.missed_indirect[last]
        );
    }

    #[test]
    fn bootstrap_round_none_when_nothing_found() {
        let code = HammingCode::random(64, 33).unwrap();
        let campaign = ProfilingCampaign::new(
            code,
            // Single at-risk bit: on-die ECC always corrects it, so Naive
            // never observes anything.
            FaultModel::uniform(&[7], 1.0),
            DataPattern::Charged,
            33,
        );
        let space = campaign.error_space();
        let result = campaign.run(ProfilerKind::Naive, 16);
        assert_eq!(bootstrap_round(&result, space.direct_at_risk()), None);
        let series = CoverageSeries::from_campaign(&result, &space);
        assert_eq!(series.bootstrap_round, None);
        assert_eq!(series.final_direct_coverage(), 0.0);
    }

    #[test]
    fn empty_series_is_detectable_unlike_the_silent_zero() {
        let code = HammingCode::random(64, 35).unwrap();
        let campaign = ProfilingCampaign::new(
            code,
            FaultModel::uniform(&[3], 1.0),
            DataPattern::Random,
            35,
        );
        let space = campaign.error_space();
        let empty = CoverageSeries::from_campaign(&campaign.run(ProfilerKind::Naive, 0), &space);
        assert!(empty.is_empty());
        assert_eq!(empty.checked_final_direct_coverage(), None);
        // The legacy accessor still collapses to 0.0 — the documented trap.
        assert_eq!(empty.final_direct_coverage(), 0.0);

        let real = CoverageSeries::from_campaign(&campaign.run(ProfilerKind::Naive, 4), &space);
        assert!(!real.is_empty());
        assert_eq!(
            real.checked_final_direct_coverage(),
            Some(real.final_direct_coverage())
        );
    }
}
