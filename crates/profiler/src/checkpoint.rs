//! Campaign checkpointing: snapshot a running campaign after any round and
//! resume it — in the same or a different process — byte-identically.
//!
//! The paper parallelizes its Monte-Carlo evaluation across compute-cluster
//! jobs (§A.7); long sweeps therefore need to survive interruption. A
//! campaign's mutable state is small and fully enumerable:
//!
//! * the per-word fault-injection RNG position ([`ChaCha8RngState`] — the
//!   keystream block is a pure function of key and counter, so only the
//!   counter and cursor are stored);
//! * the profiler's accumulators ([`ProfilerState`] — identified bits plus,
//!   for the BEEP-flavoured kinds, observed indirect bits and the crafted
//!   pattern counter; HARP-A's predictions are recomputed on restore);
//! * the per-round snapshots recorded so far.
//!
//! Chip contents need no checkpointing: every round rewrites each slot before
//! the burst read, and the pattern schedule is a pure function of the round
//! index. [`BatchRun`] is the resumable twin of
//! [`CampaignBatch::run`](crate::batch::CampaignBatch::run) and
//! [`CampaignRun`] of
//! [`ProfilingCampaign::run_profiler`](crate::campaign::ProfilingCampaign);
//! both replicate their reference round loop exactly, so
//! checkpoint-at-round-k-then-resume produces the same [`CampaignResult`]s as
//! an uninterrupted run — the invariant `tests/checkpoint_resume.rs` locks
//! down across all profiler kinds and code families.

use std::collections::BTreeSet;

use rand::SeedableRng;
use rand_chacha::{ChaCha8Rng, ChaCha8RngState};

use harp_ecc::LinearBlockCode;
use harp_memsim::{BurstScratch, MemoryChip};

use crate::batch::{step_batch_round, CampaignBatch};
use crate::campaign::{CampaignResult, ProfilingCampaign, RoundSnapshot, CAMPAIGN_RNG_SALT};
use crate::traits::{Profiler, ProfilerKind};

/// The mutable accumulators of any [`Profiler`] implementation, in one
/// concrete shape shared by every kind.
///
/// Kinds that do not use a field leave it at its default: only the
/// BEEP-flavoured kinds craft patterns (`crafted_rounds`), and only
/// HARP-A+BEEP tracks observed indirect errors separately from its direct
/// set. Derived state (HARP-A's predictions, HARP-A+BEEP's union) is
/// recomputed by [`Profiler::restore`], never stored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfilerState {
    /// Directly accumulated at-risk bits. For HARP-A+BEEP this is the
    /// *direct* (bypass-observed) set, not the published union.
    pub identified: BTreeSet<usize>,
    /// Post-correction error positions observed outside the direct set
    /// (HARP-A+BEEP only).
    pub observed_indirect: BTreeSet<usize>,
    /// Number of crafted BEEP patterns issued so far (BEEP and HARP-A+BEEP).
    pub crafted_rounds: usize,
}

impl ProfilerState {
    /// State holding only an identified set — what the non-crafting kinds
    /// (Naive, HARP-U, HARP-S) capture.
    pub fn with_identified(identified: BTreeSet<usize>) -> Self {
        Self {
            identified,
            ..Self::default()
        }
    }
}

/// Everything needed to resume one word of a campaign: RNG position,
/// profiler accumulators, and the snapshots recorded so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordCheckpoint {
    /// The word's fault-injection RNG position.
    pub rng: ChaCha8RngState,
    /// The word's profiler accumulators.
    pub profiler: ProfilerState,
    /// Per-round snapshots recorded before the checkpoint.
    pub snapshots: Vec<RoundSnapshot>,
}

/// A whole campaign frozen after `round` completed rounds: one
/// [`WordCheckpoint`] per word of the batch (a scalar campaign is the
/// one-word special case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCheckpoint {
    /// Which profiler kind the campaign runs.
    pub kind: ProfilerKind,
    /// Number of completed rounds.
    pub round: usize,
    /// Per-word state, in batch word order.
    pub words: Vec<WordCheckpoint>,
}

/// A resumable cell-batched campaign: the stateful twin of
/// [`CampaignBatch::run`], advanced in increments and checkpointable between
/// them.
///
/// # Example
///
/// ```
/// use harp_ecc::HammingCode;
/// use harp_memsim::{pattern::DataPattern, FaultModel};
/// use harp_profiler::{BatchRun, BatchWord, CampaignBatch, ProfilerKind};
///
/// let code = HammingCode::random(64, 3)?;
/// let batch = CampaignBatch::new(
///     code,
///     vec![BatchWord::new(FaultModel::uniform(&[5, 9], 0.5), DataPattern::Random, 0xFEED)],
/// );
/// let mut run = BatchRun::new(&batch, ProfilerKind::HarpU);
/// run.advance(10);
/// let frozen = run.checkpoint();
/// let mut resumed = BatchRun::resume(&batch, &frozen);
/// run.advance(22);
/// resumed.advance(22);
/// assert_eq!(run.results(), batch.run(ProfilerKind::HarpU, 32));
/// assert_eq!(resumed.results(), run.results());
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug)]
pub struct BatchRun<C: LinearBlockCode = harp_ecc::HammingCode> {
    kind: ProfilerKind,
    chip: MemoryChip<C>,
    rngs: Vec<ChaCha8Rng>,
    scratch: BurstScratch,
    profilers: Vec<Box<dyn Profiler>>,
    snapshots: Vec<Vec<RoundSnapshot>>,
    round: usize,
}

impl<C: LinearBlockCode + Clone + Send + 'static> BatchRun<C> {
    /// Starts a resumable campaign of `kind` over the batch, at round 0.
    pub fn new(batch: &CampaignBatch<C>, kind: ProfilerKind) -> Self {
        let count = batch.len();
        let mut chip = MemoryChip::new(batch.code().clone(), count);
        for (slot, word) in batch.words().iter().enumerate() {
            chip.set_fault_model(slot, word.faults.clone());
        }
        Self {
            kind,
            chip,
            rngs: batch
                .words()
                .iter()
                .map(|word| ChaCha8Rng::seed_from_u64(word.seed ^ CAMPAIGN_RNG_SALT))
                .collect(),
            scratch: BurstScratch::with_capacity(count),
            profilers: batch
                .words()
                .iter()
                .map(|word| kind.instantiate(batch.code(), word.pattern, word.seed))
                .collect(),
            snapshots: (0..count).map(|_| Vec::new()).collect(),
            round: 0,
        }
    }

    /// Reconstructs a run at exactly the checkpointed position. The batch
    /// must be the one the checkpoint was taken from (the checkpoint stores
    /// only mutable state; the word configuration is regenerated by the
    /// caller, deterministically).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's word count does not match the batch.
    pub fn resume(batch: &CampaignBatch<C>, checkpoint: &CampaignCheckpoint) -> Self {
        assert_eq!(
            checkpoint.words.len(),
            batch.len(),
            "checkpoint of {} words cannot resume a batch of {}",
            checkpoint.words.len(),
            batch.len()
        );
        let mut run = Self::new(batch, checkpoint.kind);
        run.round = checkpoint.round;
        for (slot, word) in checkpoint.words.iter().enumerate() {
            run.rngs[slot] = ChaCha8Rng::from_state(word.rng);
            run.profilers[slot].restore(&word.profiler);
            run.snapshots[slot] = word.snapshots.clone();
        }
        run
    }

    /// Number of completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The profiler kind this run evaluates.
    pub fn kind(&self) -> ProfilerKind {
        self.kind
    }

    /// Runs `rounds` further rounds through the same batched burst loop as
    /// [`CampaignBatch::run_profilers`].
    pub fn advance(&mut self, rounds: usize) {
        for _ in 0..rounds {
            step_batch_round(
                &mut self.chip,
                &mut self.rngs,
                &mut self.scratch,
                &mut self.profilers,
                &mut self.snapshots,
                self.round,
            );
            self.round += 1;
        }
    }

    /// Freezes the run after the current round.
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            kind: self.kind,
            round: self.round,
            words: self
                .rngs
                .iter()
                .zip(&self.profilers)
                .zip(&self.snapshots)
                .map(|((rng, profiler), snapshots)| WordCheckpoint {
                    rng: rng.state(),
                    profiler: profiler.state(),
                    snapshots: snapshots.clone(),
                })
                .collect(),
        }
    }

    /// The per-word results so far, identical to what
    /// [`CampaignBatch::run`] returns after the same number of rounds.
    pub fn results(&self) -> Vec<CampaignResult> {
        self.profilers
            .iter()
            .zip(&self.snapshots)
            .map(|(profiler, snapshots)| CampaignResult {
                profiler: profiler.name().to_owned(),
                snapshots: snapshots.clone(),
            })
            .collect()
    }
}

/// A resumable scalar campaign: the stateful twin of
/// [`ProfilingCampaign::run_profiler`] for one word, using the same one-word
/// burst path (`MemoryChip::write` + `read_burst`) as the scalar reference.
#[derive(Debug)]
pub struct CampaignRun<C: LinearBlockCode = harp_ecc::HammingCode> {
    chip: MemoryChip<C>,
    rng: ChaCha8Rng,
    scratch: BurstScratch,
    profiler: Box<dyn Profiler>,
    snapshots: Vec<RoundSnapshot>,
    kind: ProfilerKind,
    round: usize,
}

impl<C: LinearBlockCode + Clone + Send + 'static> CampaignRun<C> {
    /// Starts a resumable scalar campaign of `kind`, at round 0.
    pub fn new(campaign: &ProfilingCampaign<C>, kind: ProfilerKind) -> Self {
        let mut chip = MemoryChip::new(campaign.code().clone(), 1);
        chip.set_fault_model(0, campaign.faults().clone());
        Self {
            chip,
            rng: ChaCha8Rng::seed_from_u64(campaign.seed() ^ CAMPAIGN_RNG_SALT),
            scratch: BurstScratch::new(),
            profiler: kind.instantiate(campaign.code(), campaign.pattern(), campaign.seed()),
            snapshots: Vec::new(),
            kind,
            round: 0,
        }
    }

    /// Reconstructs a scalar run at exactly the checkpointed position.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint does not hold exactly one word.
    pub fn resume(campaign: &ProfilingCampaign<C>, checkpoint: &CampaignCheckpoint) -> Self {
        assert_eq!(
            checkpoint.words.len(),
            1,
            "a scalar campaign checkpoint holds exactly one word"
        );
        let mut run = Self::new(campaign, checkpoint.kind);
        let word = &checkpoint.words[0];
        run.round = checkpoint.round;
        run.rng = ChaCha8Rng::from_state(word.rng);
        run.profiler.restore(&word.profiler);
        run.snapshots = word.snapshots.clone();
        run
    }

    /// Number of completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Runs `rounds` further rounds through the scalar reference loop.
    pub fn advance(&mut self, rounds: usize) {
        for _ in 0..rounds {
            let round = self.round;
            let data = self.profiler.dataword_for_round(round);
            self.chip.write(0, &data);
            let observation = &self.chip.read_burst(0..1, &mut self.rng, &mut self.scratch)[0];
            self.profiler.observe_round(round, observation);
            self.snapshots.push(RoundSnapshot {
                round,
                identified: self.profiler.identified().clone(),
                predicted: self.profiler.predicted(),
            });
            self.round += 1;
        }
    }

    /// Freezes the run after the current round (a one-word
    /// [`CampaignCheckpoint`]).
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            kind: self.kind,
            round: self.round,
            words: vec![WordCheckpoint {
                rng: self.rng.state(),
                profiler: self.profiler.state(),
                snapshots: self.snapshots.clone(),
            }],
        }
    }

    /// The result so far, identical to what
    /// [`ProfilingCampaign::run`] returns after the same number of rounds.
    pub fn result(&self) -> CampaignResult {
        CampaignResult {
            profiler: self.profiler.name().to_owned(),
            snapshots: self.snapshots.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;
    use harp_memsim::pattern::DataPattern;
    use harp_memsim::FaultModel;

    use crate::batch::BatchWord;

    fn cell(seed: u64) -> CampaignBatch {
        let code = HammingCode::random(64, seed).unwrap();
        CampaignBatch::new(
            code,
            vec![
                BatchWord::new(
                    FaultModel::uniform(&[2, 9, 44], 0.5),
                    DataPattern::Random,
                    3,
                ),
                BatchWord::new(FaultModel::uniform(&[7], 1.0), DataPattern::Random, 11),
                BatchWord::new(
                    FaultModel::uniform(&[1, 33, 60], 0.25),
                    DataPattern::Random,
                    19,
                ),
            ],
        )
    }

    #[test]
    fn uninterrupted_batch_run_matches_the_batch_reference() {
        let batch = cell(5);
        for kind in ProfilerKind::ALL {
            let mut run = BatchRun::new(&batch, kind);
            run.advance(24);
            assert_eq!(run.results(), batch.run(kind, 24), "{kind}");
            assert_eq!(run.round(), 24);
            assert_eq!(run.kind(), kind);
        }
    }

    #[test]
    fn resume_at_every_round_matches_uninterrupted() {
        let batch = cell(7);
        let rounds = 16;
        for kind in ProfilerKind::ALL {
            let reference = batch.run(kind, rounds);
            for k in 0..=rounds {
                let mut first = BatchRun::new(&batch, kind);
                first.advance(k);
                let frozen = first.checkpoint();
                let mut resumed = BatchRun::resume(&batch, &frozen);
                resumed.advance(rounds - k);
                assert_eq!(resumed.results(), reference, "{kind} at round {k}");
            }
        }
    }

    #[test]
    fn scalar_run_resumes_identically() {
        let batch = cell(9);
        let campaign = batch.scalar_campaign(0);
        for kind in ProfilerKind::ALL {
            let reference = campaign.run(kind, 20);
            let mut run = CampaignRun::new(&campaign, kind);
            run.advance(13);
            let mut resumed = CampaignRun::resume(&campaign, &run.checkpoint());
            assert_eq!(resumed.round(), 13);
            resumed.advance(7);
            assert_eq!(resumed.result(), reference, "{kind}");
        }
    }

    #[test]
    fn profiler_state_round_trips_through_restore() {
        let batch = cell(13);
        let code = batch.code().clone();
        for kind in ProfilerKind::ALL {
            let mut original = kind.instantiate(&code, DataPattern::Random, 3);
            let mut run = BatchRun::new(&batch, kind);
            run.advance(12);
            let state = run.profilers[0].state();
            original.restore(&state);
            assert_eq!(original.state(), state, "{kind}");
            assert_eq!(original.identified(), run.profilers[0].identified());
            assert_eq!(original.predicted(), run.profilers[0].predicted());
        }
    }

    #[test]
    #[should_panic(expected = "cannot resume")]
    fn word_count_mismatch_is_rejected() {
        let batch = cell(15);
        let mut run = BatchRun::new(&batch, ProfilerKind::Naive);
        run.advance(2);
        let mut frozen = run.checkpoint();
        frozen.words.pop();
        let _ = BatchRun::resume(&batch, &frozen);
    }
}
