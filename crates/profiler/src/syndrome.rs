//! HARP-S: active profiling via the *syndrome on correction* transparency
//! option.
//!
//! §5.2 of the paper considers two ways of exposing pre-correction errors in
//! the data bits to the profiler:
//!
//! 1. **Syndrome on correction** — the on-die ECC reports the error syndrome
//!    (equivalently, the position it corrected) on every correction event;
//! 2. **Decode bypass** — a read path that returns raw data bits
//!    (implemented by [`crate::HarpUProfiler`]).
//!
//! The paper builds HARP on option 2; this module implements option 1 as an
//! ablation. Because the data bits are systematically encoded, the raw data
//! values can be reconstructed exactly from the post-correction data plus the
//! reported correction position: undo the decoder's flip if it landed in the
//! data region. Consequently HARP-S achieves *identical* direct-error
//! coverage to HARP-U, demonstrating that either chip modification suffices.

use std::collections::BTreeSet;

use harp_gf2::BitVec;
use harp_memsim::pattern::{DataPattern, PatternSchedule};
use harp_memsim::ReadObservation;

use crate::checkpoint::ProfilerState;
use crate::traits::Profiler;

/// HARP with the syndrome-on-correction interface instead of a bypass read.
///
/// # Example
///
/// ```
/// use harp_profiler::{syndrome::HarpSProfiler, Profiler};
/// use harp_memsim::pattern::DataPattern;
///
/// let profiler = HarpSProfiler::new(64, DataPattern::Random, 3);
/// assert_eq!(profiler.name(), "HARP-S");
/// assert!(!profiler.uses_bypass_read());
/// ```
#[derive(Debug, Clone)]
pub struct HarpSProfiler {
    schedule: PatternSchedule,
    identified: BTreeSet<usize>,
}

impl HarpSProfiler {
    /// Creates a HARP-S profiler for a `data_bits`-bit dataword.
    pub fn new(data_bits: usize, pattern: DataPattern, seed: u64) -> Self {
        Self {
            schedule: PatternSchedule::new(pattern, data_bits, seed),
            identified: BTreeSet::new(),
        }
    }

    /// Reconstructs the raw (pre-correction) data-bit error positions from a
    /// normal read plus the reported correction position.
    fn reconstruct_direct_errors(observation: &ReadObservation) -> Vec<usize> {
        let written = observation.written_data();
        let post = observation.post_correction_data();
        let mut raw_data = post.clone();
        for &position in observation.decode_result().outcome.corrected_positions() {
            if position < raw_data.len() {
                // The decoder flipped this data bit; the stored value was the
                // opposite of what the decoder reports.
                raw_data.flip(position);
            }
            // Corrections in the parity region do not affect the data bits.
        }
        (&raw_data ^ written).iter_ones().collect()
    }
}

impl Profiler for HarpSProfiler {
    fn name(&self) -> &'static str {
        "HARP-S"
    }

    fn dataword_for_round(&mut self, round: usize) -> BitVec {
        self.schedule.dataword_for_round(round)
    }

    fn observe_round(&mut self, _round: usize, observation: &ReadObservation) {
        self.identified
            .extend(Self::reconstruct_direct_errors(observation));
    }

    fn identified(&self) -> &BTreeSet<usize> {
        &self.identified
    }

    fn uses_bypass_read(&self) -> bool {
        false
    }

    fn state(&self) -> ProfilerState {
        ProfilerState::with_identified(self.identified.clone())
    }

    fn restore(&mut self, state: &ProfilerState) {
        self.identified = state.identified.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harp::HarpUProfiler;
    use harp_ecc::HammingCode;
    use harp_memsim::{FaultModel, MemoryChip};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_rounds(profiler: &mut dyn Profiler, chip: &mut MemoryChip, rounds: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            chip.write(0, &data);
            let obs = chip.read(0, &mut rng);
            profiler.observe_round(round, &obs);
        }
    }

    #[test]
    fn reconstruction_matches_the_bypass_path_for_single_errors() {
        let code = HammingCode::random(64, 51).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[9], 1.0));
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let obs = chip.read(0, &mut rng);
        assert_eq!(
            HarpSProfiler::reconstruct_direct_errors(&obs),
            obs.direct_errors()
        );
    }

    #[test]
    fn reconstruction_matches_the_bypass_path_under_multi_bit_errors() {
        let code = HammingCode::random(64, 52).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[3, 27, 44, 68], 0.5));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for round in 0..64usize {
            let data = if round % 2 == 0 {
                BitVec::ones(64)
            } else {
                BitVec::from_u64(64, 0xAAAA_5555_F0F0_0F0F ^ round as u64)
            };
            chip.write(0, &data);
            let obs = chip.read(0, &mut rng);
            assert_eq!(
                HarpSProfiler::reconstruct_direct_errors(&obs),
                obs.direct_errors(),
                "round {round}"
            );
        }
    }

    #[test]
    fn harp_s_and_harp_u_achieve_identical_coverage() {
        let code = HammingCode::random(64, 53).unwrap();
        let at_risk = [2usize, 18, 41, 63];
        let mut chip_s = MemoryChip::new(code, 1);
        chip_s.set_fault_model(0, FaultModel::uniform(&at_risk, 0.5));
        let mut chip_u = chip_s.clone();
        let mut harp_s = HarpSProfiler::new(64, DataPattern::Random, 9);
        let mut harp_u = HarpUProfiler::new(64, DataPattern::Random, 9);
        run_rounds(&mut harp_s, &mut chip_s, 48, 3);
        run_rounds(&mut harp_u, &mut chip_u, 48, 3);
        assert_eq!(harp_s.identified(), harp_u.identified());
        assert!(harp_s.identified().contains(&2));
    }

    #[test]
    fn harp_s_requires_no_bypass_read() {
        let profiler = HarpSProfiler::new(64, DataPattern::Charged, 0);
        assert!(!profiler.uses_bypass_read());
        assert!(profiler.predicted().is_empty());
    }
}
