//! Reactive profiling: identifying at-risk bits during normal operation with
//! the memory controller's secondary ECC (§6.3).
//!
//! After HARP's active phase has identified (and the repair mechanism has
//! repaired) every bit at risk of direct error, at most one indirect error
//! can occur per on-die-ECC word at a time. A secondary ECC with correction
//! capability ≥ 1 can therefore *safely* identify the remaining at-risk bits
//! the first time they fail: every error it corrects is recorded into the
//! error profile so the repair mechanism covers it from then on.

use std::collections::BTreeSet;

use harp_ecc::{SecondaryEcc, SecondaryObservation};
use harp_gf2::BitVec;

use crate::traits::Profiler;

/// A reactive profiler for a single ECC word.
///
/// # Example
///
/// ```
/// use harp_ecc::SecondaryEcc;
/// use harp_gf2::BitVec;
/// use harp_profiler::ReactiveProfiler;
///
/// let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
/// let written = BitVec::ones(64);
/// let mut observed = written.clone();
/// observed.flip(7);
/// let newly = reactive.observe(&written, &observed);
/// assert_eq!(newly, vec![7]);
/// assert!(reactive.identified().contains(&7));
/// ```
#[derive(Debug, Clone)]
pub struct ReactiveProfiler {
    secondary: SecondaryEcc,
    identified: BTreeSet<usize>,
    unsafe_events: usize,
    observations: usize,
}

impl ReactiveProfiler {
    /// Creates a reactive profiler using the given secondary ECC.
    pub fn new(secondary: SecondaryEcc) -> Self {
        Self {
            secondary,
            identified: BTreeSet::new(),
            unsafe_events: 0,
            observations: 0,
        }
    }

    /// Observes one read: `written` is the reference data, `post_repair` is
    /// the dataword after on-die ECC *and* the repair mechanism have been
    /// applied. Returns the dataword positions newly identified in this
    /// observation.
    pub fn observe(&mut self, written: &BitVec, post_repair: &BitVec) -> Vec<usize> {
        self.observations += 1;
        match self.secondary.observe(written, post_repair) {
            SecondaryObservation::Clean => Vec::new(),
            SecondaryObservation::Identified { positions } => {
                let newly: Vec<usize> = positions
                    .into_iter()
                    .filter(|&p| self.identified.insert(p))
                    .collect();
                newly
            }
            SecondaryObservation::Unsafe { .. } => {
                // The error escaped: nothing is identified safely, and the
                // event is counted so evaluations can report it.
                self.unsafe_events += 1;
                Vec::new()
            }
        }
    }

    /// Records a read outcome observed *outside* this profiler — the
    /// controller's read path reporting which positions its secondary ECC
    /// identified (`identified`) and whether errors escaped (`escaped`).
    /// Returns the positions not already known; only those should be
    /// forwarded as repair-table updates.
    ///
    /// This is the out-of-band twin of [`ReactiveProfiler::observe`] for
    /// callers that already ran the secondary ECC (e.g. the live-traffic
    /// co-scheduler, which decouples identification from the repair-table
    /// write by a configurable update latency).
    pub fn record_outcome(&mut self, identified: &[usize], escaped: bool) -> Vec<usize> {
        self.observations += 1;
        if escaped {
            self.unsafe_events += 1;
            return Vec::new();
        }
        identified
            .iter()
            .copied()
            .filter(|&p| self.identified.insert(p))
            .collect()
    }

    /// Bits identified by reactive profiling so far.
    pub fn identified(&self) -> &BTreeSet<usize> {
        &self.identified
    }

    /// Number of observations whose error count exceeded the secondary ECC's
    /// correction capability (system-visible failures).
    pub fn unsafe_events(&self) -> usize {
        self.unsafe_events
    }

    /// Total number of observations made.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// The secondary ECC in use.
    pub fn secondary(&self) -> &SecondaryEcc {
        &self.secondary
    }

    /// Seeds the reactive profiler with the bits already identified by an
    /// active profiler (so repeated identifications are not double counted).
    pub fn seed_with_active_results(&mut self, active: &dyn Profiler) {
        self.identified.extend(active.known_at_risk());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveProfiler;
    use harp_memsim::pattern::DataPattern;

    #[test]
    fn clean_observations_identify_nothing() {
        let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        let written = BitVec::ones(16);
        assert!(reactive.observe(&written, &written).is_empty());
        assert_eq!(reactive.observations(), 1);
        assert_eq!(reactive.unsafe_events(), 0);
        assert!(reactive.identified().is_empty());
    }

    #[test]
    fn single_errors_are_identified_once() {
        let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        let written = BitVec::ones(16);
        let mut observed = written.clone();
        observed.flip(4);
        assert_eq!(reactive.observe(&written, &observed), vec![4]);
        // Observing the same error again identifies nothing new.
        assert!(reactive.observe(&written, &observed).is_empty());
        assert_eq!(reactive.identified().len(), 1);
    }

    #[test]
    fn multi_bit_errors_are_unsafe_and_not_identified() {
        let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        let written = BitVec::zeros(16);
        let mut observed = written.clone();
        observed.flip(1);
        observed.flip(2);
        assert!(reactive.observe(&written, &observed).is_empty());
        assert_eq!(reactive.unsafe_events(), 1);
        assert!(reactive.identified().is_empty());
    }

    #[test]
    fn stronger_secondary_ecc_handles_multi_bit_errors() {
        let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal(2));
        let written = BitVec::zeros(16);
        let mut observed = written.clone();
        observed.flip(1);
        observed.flip(2);
        assert_eq!(reactive.observe(&written, &observed), vec![1, 2]);
        assert_eq!(reactive.unsafe_events(), 0);
        assert_eq!(reactive.secondary().correction_capability(), 2);
    }

    #[test]
    fn recorded_outcomes_track_identifications_and_escapes() {
        let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        // First sighting of bit 4 is fresh; the repeat is not.
        assert_eq!(reactive.record_outcome(&[4], false), vec![4]);
        assert!(reactive.record_outcome(&[4], false).is_empty());
        assert!(reactive.identified().contains(&4));
        // An escaped read is an unsafe event and identifies nothing, even
        // if positions were reported alongside it.
        assert!(reactive.record_outcome(&[9], true).is_empty());
        assert_eq!(reactive.unsafe_events(), 1);
        assert!(!reactive.identified().contains(&9));
        assert_eq!(reactive.observations(), 3);
    }

    #[test]
    fn record_outcome_agrees_with_observe() {
        // The out-of-band path must count exactly like the in-band one.
        let written = BitVec::ones(16);
        let mut observed = written.clone();
        observed.flip(4);

        let mut in_band = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        let newly = in_band.observe(&written, &observed);

        let mut out_of_band = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        assert_eq!(out_of_band.record_outcome(&newly, false), newly);
        assert_eq!(out_of_band.identified(), in_band.identified());
        assert_eq!(out_of_band.observations(), in_band.observations());
        assert_eq!(out_of_band.unsafe_events(), in_band.unsafe_events());
    }

    #[test]
    fn seeding_with_active_results_prevents_recounting() {
        let active = NaiveProfiler::new(16, DataPattern::Charged, 0);
        // Simulate the active profiler having identified bit 4 already.
        // (Directly exercising the Profiler trait object path.)
        let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());
        reactive.seed_with_active_results(&active);
        assert!(reactive.identified().is_empty());
        let _ = active.identified();
    }
}
