//! Error-profiling algorithms for memory chips with on-die ECC — the HARP
//! paper's contribution (HARP-U / HARP-A) and the baselines it is evaluated
//! against (Naive and BEEP).
//!
//! A profiler's job is to populate the repair mechanism's error profile with
//! every bit at risk of post-correction error. The paper distinguishes:
//!
//! * **active profiling** — dedicated round-based testing before the system
//!   enters service. Each round writes a data pattern, lets errors develop,
//!   reads the word back, and records what it can observe. The profilers in
//!   this crate differ in *which* observation they use (post-correction data
//!   only, raw data via the on-die-ECC bypass path, knowledge of the
//!   parity-check matrix) and in *which* data pattern they write;
//! * **reactive profiling** — continuous monitoring during normal operation
//!   by a secondary ECC in the memory controller, identifying the remaining
//!   at-risk bits the first time they fail ([`reactive::ReactiveProfiler`]).
//!
//! The whole crate is generic over the on-die ECC code: profilers that need
//! the code structure ([`BeepProfiler`], [`HarpAProfiler`],
//! [`HarpABeepProfiler`]) and the campaign driver are parameterized by
//! [`harp_ecc::LinearBlockCode`], so the identical lineup runs against SEC
//! Hamming, SEC-DED, and DEC BCH words — there is exactly one implementation
//! of each algorithm.
//!
//! [`campaign::ProfilingCampaign`] drives a profiler against a single ECC
//! word for a configurable number of rounds and records per-round snapshots;
//! [`batch::CampaignBatch`] drives a whole sweep cell of words sharing one
//! code, scrubbing all of them with a single multi-word burst per round while
//! producing snapshots bit-identical to the per-word path; [`coverage`]
//! scores those snapshots against the exact ground truth from
//! [`harp_ecc::ErrorSpace`].
//!
//! # Example
//!
//! ```
//! use harp_ecc::HammingCode;
//! use harp_memsim::{FaultModel, pattern::DataPattern};
//! use harp_profiler::{campaign::ProfilingCampaign, ProfilerKind};
//!
//! let code = HammingCode::random(64, 3)?;
//! // Two at-risk data bits that fail 50% of the time when charged.
//! let faults = FaultModel::uniform(&[5, 9], 0.5);
//!
//! let campaign = ProfilingCampaign::new(code, faults, DataPattern::Random, 0xFEED);
//! let result = campaign.run(ProfilerKind::HarpU, 32);
//! // HARP-U reads raw data bits, so it identifies both direct-error bits.
//! assert!(result.final_identified().contains(&5));
//! assert!(result.final_identified().contains(&9));
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod batch;
pub mod beep;
pub mod campaign;
pub mod checkpoint;
pub mod coverage;
pub mod harp;
pub mod naive;
pub mod reactive;
pub mod syndrome;
pub mod traits;

pub use batch::{BatchWord, CampaignBatch};
pub use beep::BeepProfiler;
pub use campaign::{CampaignResult, ProfilingCampaign, RoundSnapshot};
pub use checkpoint::{BatchRun, CampaignCheckpoint, CampaignRun, ProfilerState, WordCheckpoint};
pub use coverage::{bootstrap_round, direct_coverage, missed_indirect, CoverageSeries};
pub use harp::{HarpABeepProfiler, HarpAProfiler, HarpUProfiler};
pub use naive::NaiveProfiler;
pub use reactive::ReactiveProfiler;
pub use syndrome::HarpSProfiler;
pub use traits::{Profiler, ProfilerKind};
