//! The Naive baseline profiler.
//!
//! Naive profiling represents the vast majority of previously proposed
//! profilers (§7.1.1): multiple rounds of testing with standard worst-case
//! data patterns, identifying a bit as at-risk when (and only when) it is
//! observed to fail in the post-correction data. Naive profiling has no
//! knowledge of the on-die ECC function and no access to raw data bits, so it
//! suffers from all three profiling challenges of §4.

use std::collections::BTreeSet;

use harp_gf2::BitVec;
use harp_memsim::pattern::{DataPattern, PatternSchedule};
use harp_memsim::ReadObservation;

use crate::checkpoint::ProfilerState;
use crate::traits::Profiler;

/// Round-based profiling from post-correction errors only.
///
/// # Example
///
/// ```
/// use harp_profiler::{NaiveProfiler, Profiler};
/// use harp_memsim::pattern::DataPattern;
///
/// let mut profiler = NaiveProfiler::new(64, DataPattern::Charged, 0);
/// assert_eq!(profiler.name(), "Naive");
/// assert_eq!(profiler.dataword_for_round(0).count_ones(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct NaiveProfiler {
    schedule: PatternSchedule,
    identified: BTreeSet<usize>,
}

impl NaiveProfiler {
    /// Creates a Naive profiler for a `data_bits`-bit dataword using the
    /// given data-pattern family.
    pub fn new(data_bits: usize, pattern: DataPattern, seed: u64) -> Self {
        Self {
            schedule: PatternSchedule::new(pattern, data_bits, seed),
            identified: BTreeSet::new(),
        }
    }

    /// The data-pattern family in use.
    pub fn pattern(&self) -> DataPattern {
        self.schedule.pattern()
    }
}

impl Profiler for NaiveProfiler {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn dataword_for_round(&mut self, round: usize) -> BitVec {
        self.schedule.dataword_for_round(round)
    }

    fn observe_round(&mut self, _round: usize, observation: &ReadObservation) {
        // The only signal available is a mismatch between what was written
        // and what the (decoded) read returned.
        self.identified.extend(observation.post_correction_errors());
    }

    fn identified(&self) -> &BTreeSet<usize> {
        &self.identified
    }

    fn uses_bypass_read(&self) -> bool {
        false
    }

    fn state(&self) -> ProfilerState {
        ProfilerState::with_identified(self.identified.clone())
    }

    fn restore(&mut self, state: &ProfilerState) {
        self.identified = state.identified.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;
    use harp_memsim::{FaultModel, MemoryChip};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_rounds(profiler: &mut dyn Profiler, chip: &mut MemoryChip, rounds: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            chip.write(0, &data);
            let obs = chip.read(0, &mut rng);
            profiler.observe_round(round, &obs);
        }
    }

    #[test]
    fn naive_cannot_see_corrected_single_bit_errors() {
        let code = HammingCode::random(64, 5).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[7], 1.0));
        let mut profiler = NaiveProfiler::new(64, DataPattern::Charged, 0);
        run_rounds(&mut profiler, &mut chip, 16, 1);
        // On-die ECC always corrects the lone error, so Naive never sees it.
        assert!(profiler.identified().is_empty());
        assert!(profiler.predicted().is_empty());
        assert!(!profiler.uses_bypass_read());
    }

    #[test]
    fn naive_identifies_direct_errors_from_uncorrectable_patterns() {
        let code = HammingCode::random(64, 6).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        // Two always-failing data bits form an uncorrectable pattern every
        // round they are both charged.
        chip.set_fault_model(0, FaultModel::uniform(&[3, 11], 1.0));
        let mut profiler = NaiveProfiler::new(64, DataPattern::Charged, 0);
        run_rounds(&mut profiler, &mut chip, 8, 2);
        assert!(profiler.identified().contains(&3));
        assert!(profiler.identified().contains(&11));
    }

    #[test]
    fn naive_with_random_pattern_eventually_finds_probabilistic_errors() {
        let code = HammingCode::random(64, 7).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[3, 11, 40], 0.5));
        let mut profiler = NaiveProfiler::new(64, DataPattern::Random, 13);
        run_rounds(&mut profiler, &mut chip, 128, 3);
        // With three at-risk bits at p=0.5 over 128 rounds, uncorrectable
        // patterns occur many times; the direct bits should all be seen.
        for bit in [3usize, 11, 40] {
            assert!(
                profiler.identified().contains(&bit),
                "bit {bit} not identified: {:?}",
                profiler.identified()
            );
        }
    }

    #[test]
    fn known_at_risk_equals_identified_for_naive() {
        let mut profiler = NaiveProfiler::new(8, DataPattern::Checkered, 0);
        assert_eq!(profiler.known_at_risk(), BTreeSet::new());
        assert_eq!(profiler.pattern(), DataPattern::Checkered);
        let _ = profiler.dataword_for_round(0);
    }
}
