//! Cell-batched profiling campaigns: every word of one Monte-Carlo sweep
//! cell scrubbed in a single burst per round.
//!
//! The paper's evaluation (§7.1.2, §A.7) runs thousands of *independent* ECC
//! words per sweep cell; all words sharing a code index use the same
//! parity-check matrix, differing only in their fault models and seeds.
//! [`ProfilingCampaign::run_profiler`] simulates one such word per
//! [`MemoryChip`] and therefore issues one-word bursts — the batched syndrome
//! kernel never sees more than a single word per call. [`CampaignBatch`]
//! loads a whole cell's words into one multi-word chip and scrubs them with
//! **one [`MemoryChip::read_burst_with_rngs`] per round**, turning the
//! kernel's batched bit-sliced evaluation — 64 words per transposed block,
//! clean words short-circuited by the block's nonzero-syndrome mask — into
//! the default data flow of every sweep.
//!
//! The batching is an execution-plan change only. Each word keeps its own
//! ChaCha8 fault-injection stream (derived from its campaign seed exactly as
//! the scalar path derives it) and its own profiler instance, so every
//! per-round snapshot is **bit-identical** to running that word alone through
//! [`ProfilingCampaign::run_profiler`] — the scalar path stays as the
//! reference implementation, and the differential suite in
//! `tests/campaign_equivalence.rs` asserts the equivalence across all
//! profiler kinds and code families.
//!
//! # Example
//!
//! ```
//! use harp_ecc::HammingCode;
//! use harp_memsim::{pattern::DataPattern, FaultModel};
//! use harp_profiler::{BatchWord, CampaignBatch, ProfilerKind};
//!
//! let code = HammingCode::random(64, 3)?;
//! // Two independent words of the same sweep cell (same code, different
//! // fault models and seeds).
//! let batch = CampaignBatch::new(
//!     code,
//!     vec![
//!         BatchWord::new(FaultModel::uniform(&[5, 9], 0.5), DataPattern::Random, 0xFEED),
//!         BatchWord::new(FaultModel::uniform(&[40], 1.0), DataPattern::Random, 0xBEE5),
//!     ],
//! );
//! let results = batch.run(ProfilerKind::HarpU, 32);
//! assert_eq!(results.len(), 2);
//! // Snapshot-for-snapshot identical to running each word alone:
//! assert_eq!(results[0], batch.scalar_campaign(0).run(ProfilerKind::HarpU, 32));
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_ecc::{ErrorSpace, LinearBlockCode};
use harp_memsim::pattern::DataPattern;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};

use crate::campaign::{CampaignResult, ProfilingCampaign, RoundSnapshot, CAMPAIGN_RNG_SALT};
use crate::traits::{Profiler, ProfilerKind};

/// Executes one batched profiling round: write every slot's dataword, scrub
/// the whole cell with one multi-word burst, and let each profiler observe
/// its own slot. This is the single round loop shared by
/// [`CampaignBatch::run_profilers`] and the resumable
/// [`crate::checkpoint::BatchRun`], so checkpointed campaigns replay exactly
/// the reference data flow.
pub(crate) fn step_batch_round<C: LinearBlockCode>(
    chip: &mut MemoryChip<C>,
    rngs: &mut [ChaCha8Rng],
    scratch: &mut BurstScratch,
    profilers: &mut [Box<dyn Profiler>],
    snapshots: &mut [Vec<RoundSnapshot>],
    round: usize,
) {
    let count = profilers.len();
    for (slot, profiler) in profilers.iter_mut().enumerate() {
        let data = profiler.dataword_for_round(round);
        chip.write_in_place(slot, &data);
    }
    let observations = chip.read_burst_with_rngs(0..count, rngs, scratch);
    for ((profiler, observation), word_snapshots) in profilers
        .iter_mut()
        .zip(observations)
        .zip(snapshots.iter_mut())
    {
        profiler.observe_round(round, observation);
        word_snapshots.push(RoundSnapshot {
            round,
            identified: profiler.identified().clone(),
            predicted: profiler.predicted(),
        });
    }
}

/// The per-word configuration of one batched campaign slot: everything a
/// [`ProfilingCampaign`] holds except the (shared) code.
#[derive(Debug, Clone)]
pub struct BatchWord {
    /// The word's at-risk bits and their failure probabilities.
    pub faults: FaultModel,
    /// Data-pattern family for this word's standard testing rounds.
    pub pattern: DataPattern,
    /// Deterministic campaign seed; the fault-injection stream and the
    /// profiler's pattern stream both derive from it.
    pub seed: u64,
}

impl BatchWord {
    /// Creates a batch slot.
    pub fn new(faults: FaultModel, pattern: DataPattern, seed: u64) -> Self {
        Self {
            faults,
            pattern,
            seed,
        }
    }
}

/// A cell-batched campaign: all words of one sweep cell that share an on-die
/// ECC code, scrubbed per round in a single burst.
#[derive(Debug, Clone)]
pub struct CampaignBatch<C: LinearBlockCode = harp_ecc::HammingCode> {
    code: C,
    words: Vec<BatchWord>,
}

impl<C: LinearBlockCode + Clone + Send + 'static> CampaignBatch<C> {
    /// Creates a batch for one cell of `words` independent ECC words, all
    /// protected by `code`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty (a burst needs at least one word).
    pub fn new(code: C, words: Vec<BatchWord>) -> Self {
        assert!(
            !words.is_empty(),
            "a campaign batch needs at least one word"
        );
        Self { code, words }
    }

    /// The shared on-die ECC code of this cell.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// The per-word configurations, in word order.
    pub fn words(&self) -> &[BatchWord] {
        &self.words
    }

    /// Number of words in the cell.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Always `false` (construction rejects empty batches); provided for
    /// collection-like completeness.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The scalar-reference view of word `index`: a [`ProfilingCampaign`]
    /// that runs this word alone, producing bit-identical snapshots through
    /// [`ProfilingCampaign::run_profiler`]. The differential test layer
    /// compares batched output against exactly this campaign.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn scalar_campaign(&self, index: usize) -> ProfilingCampaign<C> {
        let word = &self.words[index];
        ProfilingCampaign::new(
            self.code.clone(),
            word.faults.clone(),
            word.pattern,
            word.seed,
        )
    }

    /// The exact ground truth for word `index` (see
    /// [`ProfilingCampaign::error_space`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn error_space(&self, index: usize) -> ErrorSpace {
        let word = &self.words[index];
        ErrorSpace::enumerate(
            &self.code,
            &word.faults.at_risk_positions(),
            word.faults.dependence(),
        )
    }

    /// Runs a freshly instantiated profiler of the given kind on every word
    /// of the cell for `rounds` rounds, returning one [`CampaignResult`] per
    /// word in word order.
    pub fn run(&self, kind: ProfilerKind, rounds: usize) -> Vec<CampaignResult> {
        let mut profilers: Vec<Box<dyn Profiler>> = self
            .words
            .iter()
            .map(|word| kind.instantiate(&self.code, word.pattern, word.seed))
            .collect();
        self.run_profilers(&mut profilers, rounds)
    }

    /// Runs one existing profiler per word for `rounds` rounds.
    ///
    /// All words share a single [`MemoryChip`] and every round performs **one
    /// multi-word burst** over the whole cell: the per-round datawords are
    /// written into each word's slot, the burst samples each word's raw
    /// errors from that word's own seed-derived RNG stream (via
    /// [`MemoryChip::read_burst_with_rngs`]), and each profiler observes its
    /// own slot. `BurstScratch` persists across rounds, so the steady-state
    /// round loop performs no heap allocation in the decode path.
    ///
    /// # Panics
    ///
    /// Panics if `profilers.len()` does not match the number of words.
    pub fn run_profilers(
        &self,
        profilers: &mut [Box<dyn Profiler>],
        rounds: usize,
    ) -> Vec<CampaignResult> {
        assert_eq!(
            profilers.len(),
            self.words.len(),
            "batch of {} words needs {} profilers, got {}",
            self.words.len(),
            self.words.len(),
            profilers.len()
        );
        let count = self.words.len();
        let mut chip = MemoryChip::new(self.code.clone(), count);
        for (slot, word) in self.words.iter().enumerate() {
            chip.set_fault_model(slot, word.faults.clone());
        }
        let mut rngs: Vec<ChaCha8Rng> = self
            .words
            .iter()
            .map(|word| ChaCha8Rng::seed_from_u64(word.seed ^ CAMPAIGN_RNG_SALT))
            .collect();
        let mut scratch = BurstScratch::with_capacity(count);
        let mut snapshots: Vec<Vec<RoundSnapshot>> =
            (0..count).map(|_| Vec::with_capacity(rounds)).collect();
        for round in 0..rounds {
            step_batch_round(
                &mut chip,
                &mut rngs,
                &mut scratch,
                profilers,
                &mut snapshots,
                round,
            );
        }
        profilers
            .iter()
            .zip(snapshots)
            .map(|(profiler, word_snapshots)| CampaignResult {
                profiler: profiler.name().to_owned(),
                snapshots: word_snapshots,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    fn cell(seed: u64) -> CampaignBatch {
        let code = HammingCode::random(64, seed).unwrap();
        CampaignBatch::new(
            code,
            vec![
                BatchWord::new(
                    FaultModel::uniform(&[2, 9, 44], 0.5),
                    DataPattern::Random,
                    3,
                ),
                BatchWord::new(FaultModel::uniform(&[7], 1.0), DataPattern::Random, 11),
                BatchWord::new(
                    FaultModel::uniform(&[1, 33, 60], 0.25),
                    DataPattern::Random,
                    19,
                ),
            ],
        )
    }

    #[test]
    fn batched_snapshots_match_the_scalar_reference_path() {
        let batch = cell(5);
        for kind in [ProfilerKind::HarpU, ProfilerKind::Naive] {
            let batched = batch.run(kind, 24);
            assert_eq!(batched.len(), batch.len());
            for (index, result) in batched.iter().enumerate() {
                let scalar = batch.scalar_campaign(index).run(kind, 24);
                assert_eq!(result, &scalar, "{kind} word {index}");
            }
        }
    }

    #[test]
    fn single_word_batch_degenerates_to_the_scalar_campaign() {
        let code = HammingCode::random(64, 7).unwrap();
        let batch = CampaignBatch::new(
            code,
            vec![BatchWord::new(
                FaultModel::uniform(&[4, 18], 0.75),
                DataPattern::Random,
                13,
            )],
        );
        let batched = batch.run(ProfilerKind::HarpA, 16);
        assert_eq!(batched.len(), 1);
        assert_eq!(
            batched[0],
            batch.scalar_campaign(0).run(ProfilerKind::HarpA, 16)
        );
    }

    #[test]
    fn batch_runs_are_deterministic() {
        let batch = cell(9);
        let a = batch.run(ProfilerKind::Beep, 32);
        let b = batch.run(ProfilerKind::Beep, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_rounds_produce_empty_results_per_word() {
        let batch = cell(11);
        let results = batch.run(ProfilerKind::Naive, 0);
        assert_eq!(results.len(), 3);
        for result in results {
            assert_eq!(result.rounds(), 0);
        }
    }

    #[test]
    fn error_space_matches_the_scalar_campaign() {
        let batch = cell(13);
        for index in 0..batch.len() {
            assert_eq!(
                batch.error_space(index).post_correction_at_risk(),
                batch
                    .scalar_campaign(index)
                    .error_space()
                    .post_correction_at_risk()
            );
        }
    }

    #[test]
    fn accessors_expose_configuration() {
        let batch = cell(15);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.words()[1].seed, 11);
        assert_eq!(batch.code().data_len(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn empty_batches_are_rejected() {
        let code = HammingCode::random(8, 1).unwrap();
        CampaignBatch::new(code, Vec::new());
    }

    #[test]
    #[should_panic(expected = "profilers")]
    fn mismatched_profiler_count_panics() {
        let batch = cell(17);
        let code = batch.code().clone();
        let mut profilers: Vec<Box<dyn Profiler>> =
            vec![ProfilerKind::Naive.instantiate(&code, DataPattern::Random, 0)];
        batch.run_profilers(&mut profilers, 4);
    }
}
