//! The `harpd` client subcommands: `harp submit`, `harp watch`, `harp jobs`,
//! `harp cancel`, `harp shutdown`.
//!
//! Each talks the wire protocol documented in ROADMAP.md to a running
//! `harpd serve` instance (default address
//! [`harp_server::daemon::DEFAULT_ADDR`]).

use harp_profiler::ProfilerKind;
use harp_server::client::{Client, Snapshot, WatchOutcome};
use harp_server::daemon::DEFAULT_ADDR;
use harp_server::transport::TcpTransport;
use harp_sim::experiments::fig6;
use harp_sim::EvaluationConfig;

/// Options shared by every client subcommand plus the submit knobs.
#[derive(Debug, Clone, PartialEq)]
struct ClientOptions {
    addr: String,
    job: Option<u64>,
    full: bool,
    long_code: bool,
    rounds: Option<usize>,
    codes: Option<usize>,
    words: Option<usize>,
    profilers: Option<Vec<ProfilerKind>>,
}

fn parse_client_args(args: &[String]) -> Result<ClientOptions, String> {
    let mut options = ClientOptions {
        addr: DEFAULT_ADDR.to_owned(),
        job: None,
        full: false,
        long_code: false,
        rounds: None,
        codes: None,
        words: None,
        profilers: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().ok_or_else(|| format!("{arg} requires a value"));
        match arg.as_str() {
            "--addr" => options.addr = value()?.clone(),
            "--full" => options.full = true,
            "--long-code" => options.long_code = true,
            "--rounds" => options.rounds = Some(parse_count("--rounds", value()?)?),
            "--codes" => options.codes = Some(parse_count("--codes", value()?)?),
            "--words" => options.words = Some(parse_count("--words", value()?)?),
            "--profilers" => {
                options.profilers = Some(
                    value()?
                        .split(',')
                        .map(|name| {
                            ProfilerKind::from_name(name)
                                .ok_or_else(|| format!("unknown profiler '{name}'"))
                        })
                        .collect::<Result<_, String>>()?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option: {flag}")),
            name => {
                if options.job.is_some() {
                    return Err(format!("unexpected extra argument: {name}"));
                }
                options.job = Some(
                    name.parse()
                        .map_err(|_| format!("'{name}' is not a job id"))?,
                );
            }
        }
    }
    Ok(options)
}

fn parse_count(flag: &str, text: &str) -> Result<usize, String> {
    let count: usize = text
        .parse()
        .map_err(|_| format!("{flag}: '{text}' is not a count"))?;
    if count == 0 {
        return Err(format!("{flag} must be nonzero"));
    }
    Ok(count)
}

fn submit_config(options: &ClientOptions) -> EvaluationConfig {
    let mut config = if options.full {
        EvaluationConfig::paper_scale()
    } else {
        EvaluationConfig::quick()
    };
    if options.long_code {
        config = config.with_long_code();
    }
    if let Some(rounds) = options.rounds {
        config.rounds = rounds;
    }
    if let Some(codes) = options.codes {
        config.num_codes = codes;
    }
    if let Some(words) = options.words {
        config.words_per_code = words;
    }
    config
}

fn connect(options: &ClientOptions) -> Result<Client<TcpTransport>, String> {
    Client::connect(&options.addr)
}

fn require_job(options: &ClientOptions, verb: &str) -> Result<u64, String> {
    options
        .job
        .ok_or_else(|| format!("harp {verb} needs a job id (from `harp submit` or `harp jobs`)"))
}

/// `harp submit`: submit a sweep job and print its id.
///
/// # Errors
///
/// Returns argument, connection, and daemon-side failures as user-facing
/// messages.
pub fn run_submit(args: &[String]) -> Result<(), String> {
    let options = parse_client_args(args)?;
    if options.job.is_some() {
        return Err("harp submit takes no job id".to_owned());
    }
    let profilers = options
        .profilers
        .clone()
        .unwrap_or_else(|| fig6::PROFILERS.to_vec());
    let config = submit_config(&options);
    let job = connect(&options)?.submit(&config, &profilers)?;
    println!(
        "submitted job {job}: {} codes x {} words, {} rounds, profilers [{}]",
        config.num_codes,
        config.words_per_code,
        config.rounds,
        profilers
            .iter()
            .map(|kind| kind.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("follow it with: harp watch {job} --addr {}", options.addr);
    Ok(())
}

fn render_snapshot(snapshot: &Snapshot) -> String {
    let coverage = snapshot
        .coverage
        .iter()
        .map(|(name, mean)| format!("{name} {:5.1}%", mean * 100.0))
        .collect::<Vec<_>>()
        .join("  ");
    format!(
        "job {} round {:>4}/{}: {coverage}",
        snapshot.job, snapshot.round, snapshot.rounds
    )
}

/// `harp watch JOB`: stream a job's round-by-round coverage to stdout until
/// it ends.
///
/// # Errors
///
/// Returns argument, connection, and daemon-side failures, and reports
/// cancelled/failed jobs as errors.
pub fn run_watch(args: &[String]) -> Result<(), String> {
    let options = parse_client_args(args)?;
    let job = require_job(&options, "watch")?;
    let outcome = connect(&options)?.watch(job, |snapshot| {
        println!("{}", render_snapshot(snapshot));
    })?;
    match outcome {
        WatchOutcome::Completed(sweep) => {
            println!(
                "job {job} done: {} rounds, {} word evaluations",
                sweep.rounds,
                sweep.evaluations.len()
            );
            Ok(())
        }
        WatchOutcome::Ended(status) => Err(match status.message {
            Some(message) => format!("job {job} {}: {message}", status.state),
            None => format!("job {job} {}", status.state),
        }),
    }
}

/// `harp jobs`: list every job the daemon knows.
///
/// # Errors
///
/// Returns argument and connection failures.
pub fn run_jobs(args: &[String]) -> Result<(), String> {
    let options = parse_client_args(args)?;
    if options.job.is_some() {
        return Err("harp jobs takes no job id".to_owned());
    }
    let jobs = connect(&options)?.jobs()?;
    if jobs.is_empty() {
        println!("no jobs");
        return Ok(());
    }
    for status in jobs {
        let message = status
            .message
            .map(|m| format!("  ({m})"))
            .unwrap_or_default();
        println!(
            "job {:>3}  {:<9}  round {:>4}/{}{message}",
            status.job, status.state, status.round, status.rounds
        );
    }
    Ok(())
}

/// `harp cancel JOB`: request cancellation and print the job's state.
///
/// # Errors
///
/// Returns argument, connection, and daemon-side failures.
pub fn run_cancel(args: &[String]) -> Result<(), String> {
    let options = parse_client_args(args)?;
    let job = require_job(&options, "cancel")?;
    let status = connect(&options)?.cancel(job)?;
    println!("job {job} is now {}", status.state);
    Ok(())
}

/// `harp shutdown`: checkpoint running jobs and stop the daemon.
///
/// # Errors
///
/// Returns argument and connection failures.
pub fn run_shutdown(args: &[String]) -> Result<(), String> {
    let options = parse_client_args(args)?;
    if options.job.is_some() {
        return Err("harp shutdown takes no job id".to_owned());
    }
    connect(&options)?.shutdown()?;
    println!("daemon at {} is shutting down", options.addr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_server::daemon::{Daemon, DaemonConfig};
    use std::net::TcpListener;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_submit_knobs_and_rejects_bad_input() {
        let options = parse_client_args(&args(&[
            "--addr",
            "127.0.0.1:9",
            "--rounds",
            "4",
            "--profilers",
            "HARP-U,Naive",
        ]))
        .unwrap();
        assert_eq!(options.addr, "127.0.0.1:9");
        assert_eq!(options.rounds, Some(4));
        assert_eq!(
            options.profilers,
            Some(vec![ProfilerKind::HarpU, ProfilerKind::Naive])
        );

        assert!(parse_client_args(&args(&["--bogus"])).is_err());
        assert!(parse_client_args(&args(&["--rounds", "0"])).is_err());
        assert!(parse_client_args(&args(&["--profilers", "NOPE"])).is_err());
        assert!(parse_client_args(&args(&["7", "8"])).is_err());
        assert!(parse_client_args(&args(&["sevenish"])).is_err());
        assert!(run_watch(&args(&["--addr", "127.0.0.1:9"]))
            .unwrap_err()
            .contains("job id"));
    }

    #[test]
    fn submit_watch_jobs_and_shutdown_round_trip_over_tcp() {
        let dir = std::env::temp_dir().join(format!("harp_client_cli_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let daemon = daemon.clone();
            std::thread::spawn(move || daemon.serve(listener).unwrap())
        };

        let base = ["--addr", addr.as_str()];
        let tiny = [
            "--addr",
            &addr,
            "--rounds",
            "4",
            "--codes",
            "1",
            "--words",
            "2",
            "--profilers",
            "HARP-U",
        ];
        run_submit(&args(&tiny)).unwrap();
        run_jobs(&args(&base)).unwrap();
        run_watch(&args(&["0", "--addr", &addr])).unwrap();
        assert!(run_watch(&args(&["99", "--addr", &addr]))
            .unwrap_err()
            .contains("no job 99"));
        run_shutdown(&args(&base)).unwrap();
        server.join().unwrap();
        daemon.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
