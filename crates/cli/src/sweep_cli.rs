//! The `harp sweep` / `harp merge` tooling subcommands: checkpointed,
//! resumable, and distributable coverage sweeps.
//!
//! `sweep` runs the active-phase coverage sweep (the `fig6` profiler lineup)
//! as a [`ResumableSweep`], optionally freezing a checkpoint archive every
//! `--checkpoint-interval` rounds and resuming from one with `--resume`.
//! With `--shard i/N` it becomes worker `i` of an `N`-way distributed sweep
//! and persists its groups as a shard-output file; `merge` folds the shard
//! outputs back into the single-process result. See ROADMAP.md for the
//! sharding invariant that makes the distribution exact.

use std::path::{Path, PathBuf};

use harp_ecc::HammingCode;
use harp_sim::checkpoint::{
    merge_shards, read_manifest, render_sweep_summary, shard_file_name, ResumableSweep, ShardSpec,
};
use harp_sim::experiments::fig6;
use harp_sim::EvaluationConfig;

/// Default checkpoint cadence when `--checkpoint-dir` is given without an
/// explicit `--checkpoint-interval`.
const DEFAULT_CHECKPOINT_INTERVAL: usize = 32;

#[derive(Debug, Clone, PartialEq, Eq)]
struct SweepOptions {
    full: bool,
    long_code: bool,
    checkpoint_dir: Option<String>,
    checkpoint_interval: Option<usize>,
    resume: bool,
    shard: Option<String>,
    out: Option<String>,
}

fn parse_sweep(args: &[String]) -> Result<SweepOptions, String> {
    let mut options = SweepOptions {
        full: false,
        long_code: false,
        checkpoint_dir: None,
        checkpoint_interval: None,
        resume: false,
        shard: None,
        out: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--full" => options.full = true,
            "--long-code" => options.long_code = true,
            "--resume" => options.resume = true,
            "--checkpoint-dir" => options.checkpoint_dir = Some(value_of("--checkpoint-dir")?),
            "--checkpoint-interval" => {
                let raw = value_of("--checkpoint-interval")?;
                let rounds: usize = raw
                    .parse()
                    .map_err(|_| format!("--checkpoint-interval '{raw}' is not a number"))?;
                if rounds == 0 {
                    return Err("--checkpoint-interval must be at least 1".to_owned());
                }
                options.checkpoint_interval = Some(rounds);
            }
            "--shard" => options.shard = Some(value_of("--shard")?),
            "--out" => options.out = Some(value_of("--out")?),
            other => return Err(format!("unknown sweep option: {other}")),
        }
    }
    if options.resume {
        if options.checkpoint_dir.is_none() {
            return Err("--resume requires --checkpoint-dir".to_owned());
        }
        if options.full || options.long_code || options.shard.is_some() {
            return Err(
                "--resume restores configuration and shard from the archive; \
                 drop --full/--long-code/--shard"
                    .to_owned(),
            );
        }
    }
    Ok(options)
}

/// Runs `harp sweep`.
///
/// # Errors
///
/// Returns a user-facing message on bad flags or I/O failures.
pub fn run_sweep(args: &[String]) -> Result<(), String> {
    let options = parse_sweep(args)?;
    let shard = match &options.shard {
        Some(text) => ShardSpec::parse(text)?,
        None => ShardSpec::full(),
    };

    let mut sweep = if options.resume {
        let dir = PathBuf::from(options.checkpoint_dir.as_deref().expect("validated"));
        let manifest = read_manifest(&dir).map_err(|e| e.to_string())?;
        let data_bits = manifest.config.data_bits;
        // The archive is untrusted input: a corrupt `data_bits` must surface
        // as an error like every other archive-validation failure, not a
        // panic. Code construction succeeds or fails independently of the
        // seed (the seed only shuffles candidate columns), so one probe
        // clears every per-group construction below.
        HammingCode::random(data_bits, 0).map_err(|e| {
            format!(
                "cannot resume from {}: archived data_bits {data_bits} does not \
                 yield a valid Hamming code: {e}",
                dir.display()
            )
        })?;
        let sweep = ResumableSweep::resume(&dir, |seed| {
            HammingCode::random(data_bits, seed).expect("probed above, seed-independent")
        })
        .map_err(|e| e.to_string())?;
        eprintln!(
            "resumed shard {} at round {} of {} ({} code groups)",
            sweep.shard(),
            sweep.round(),
            sweep.config().rounds,
            sweep.num_groups()
        );
        sweep
    } else {
        let mut config = if options.full {
            EvaluationConfig::paper_scale()
        } else {
            EvaluationConfig::quick()
        };
        if options.long_code {
            config = config.with_long_code();
        }
        let data_bits = config.data_bits;
        let sweep = ResumableSweep::sharded(&config, &fig6::PROFILERS, shard, |seed| {
            HammingCode::random(data_bits, seed).expect("valid configuration yields valid codes")
        });
        eprintln!(
            "sweep shard {}: {} of {} code groups, {} rounds",
            shard,
            sweep.num_groups(),
            sweep.total_groups(),
            sweep.config().rounds
        );
        sweep
    };

    let interval = match (&options.checkpoint_dir, options.checkpoint_interval) {
        (Some(_), interval) => interval.unwrap_or(DEFAULT_CHECKPOINT_INTERVAL),
        (None, Some(_)) => return Err("--checkpoint-interval requires --checkpoint-dir".to_owned()),
        (None, None) => usize::MAX,
    };
    while !sweep.is_complete() {
        sweep.advance(interval);
        if let Some(dir) = &options.checkpoint_dir {
            sweep
                .write_archive(Path::new(dir))
                .map_err(|e| format!("could not write checkpoint archive: {e}"))?;
            eprintln!(
                "checkpointed round {} of {} into {dir}",
                sweep.round(),
                sweep.config().rounds
            );
        }
    }

    if sweep.shard() == ShardSpec::full() {
        println!("{}", render_sweep_summary(&sweep.into_sweep()));
    } else {
        let path = match &options.out {
            Some(path) => PathBuf::from(path),
            None => {
                let base = options.checkpoint_dir.as_deref().unwrap_or(".");
                Path::new(base).join(shard_file_name(sweep.shard()))
            }
        };
        sweep
            .write_shard_output(&path)
            .map_err(|e| format!("could not write shard output: {e}"))?;
        println!(
            "shard {} complete: wrote {} (fold the shards with `harp merge`)",
            sweep.shard(),
            path.display()
        );
    }
    Ok(())
}

/// Runs `harp merge FILE...`.
///
/// # Errors
///
/// Returns a user-facing message when no files are given or the shards are
/// inconsistent or incomplete.
pub fn run_merge(args: &[String]) -> Result<(), String> {
    if args.is_empty() || args.iter().any(|a| a.starts_with("--")) {
        return Err("merge takes shard-output files: harp merge SHARD_0_of_2.json ...".to_owned());
    }
    let paths: Vec<PathBuf> = args.iter().map(PathBuf::from).collect();
    let sweep = merge_shards(&paths).map_err(|e| e.to_string())?;
    println!("{}", render_sweep_summary(&sweep));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let options = parse_sweep(&args(&[
            "--full",
            "--long-code",
            "--checkpoint-dir",
            "/tmp/ckpt",
            "--checkpoint-interval",
            "16",
            "--shard",
            "1/4",
            "--out",
            "/tmp/shard.json",
        ]))
        .unwrap();
        assert!(options.full && options.long_code);
        assert_eq!(options.checkpoint_dir.as_deref(), Some("/tmp/ckpt"));
        assert_eq!(options.checkpoint_interval, Some(16));
        assert_eq!(options.shard.as_deref(), Some("1/4"));
        assert_eq!(options.out.as_deref(), Some("/tmp/shard.json"));
    }

    #[test]
    fn resume_requires_a_dir_and_excludes_config_flags() {
        assert!(parse_sweep(&args(&["--resume"])).is_err());
        assert!(parse_sweep(&args(&["--resume", "--checkpoint-dir", "d", "--full"])).is_err());
        assert!(parse_sweep(&args(&[
            "--resume",
            "--checkpoint-dir",
            "d",
            "--shard",
            "0/2"
        ]))
        .is_err());
        assert!(parse_sweep(&args(&["--resume", "--checkpoint-dir", "d"])).is_ok());
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(parse_sweep(&args(&["--checkpoint-interval", "x"])).is_err());
        assert!(parse_sweep(&args(&["--checkpoint-interval", "0"])).is_err());
        assert!(parse_sweep(&args(&["--checkpoint-dir"])).is_err());
        assert!(parse_sweep(&args(&["--bogus"])).is_err());
        // An interval without a directory to write into is a usage error
        // (surfaced by run_sweep, after parsing).
        let options = parse_sweep(&args(&["--checkpoint-interval", "8"])).unwrap();
        assert_eq!(options.checkpoint_interval, Some(8));
        assert!(run_sweep(&args(&["--checkpoint-interval", "8"])).is_err());
    }

    #[test]
    fn merge_requires_file_arguments() {
        assert!(run_merge(&[]).is_err());
        assert!(run_merge(&args(&["--check"])).is_err());
    }

    /// Regression: `harp sweep --resume` used to panic via
    /// `.expect("archived configuration is valid")` when a manifest carried
    /// corrupt `data_bits`. Every flavor of manifest corruption must come
    /// back as a user-facing `Err`.
    #[test]
    fn resume_from_a_corrupt_manifest_is_an_error_not_a_panic() {
        let dir =
            std::env::temp_dir().join(format!("harp_sweep_cli_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = harp_sim::EvaluationConfig {
            num_codes: 1,
            words_per_code: 1,
            rounds: 4,
            error_counts: vec![2],
            probabilities: vec![0.5],
            threads: 1,
            ..harp_sim::EvaluationConfig::quick()
        };
        let mut sweep = ResumableSweep::new(&config, &fig6::PROFILERS, |seed| {
            HammingCode::random(config.data_bits, seed).unwrap()
        });
        sweep.advance(2);
        sweep.write_archive(&dir).unwrap();

        let manifest_path = dir.join("MANIFEST.json");
        let pristine = std::fs::read_to_string(&manifest_path).unwrap();
        let resume_args = args(&["--resume", "--checkpoint-dir", dir.to_str().unwrap()]);
        for corrupt in [
            pristine.replacen("\"data_bits\":64", "\"data_bits\":0", 1),
            pristine.replacen("\"data_bits\":64", "\"data_bits\":\"x\"", 1),
            "not json".to_owned(),
        ] {
            std::fs::write(&manifest_path, corrupt).unwrap();
            let err = run_sweep(&resume_args).unwrap_err();
            assert!(!err.is_empty());
        }

        // The pristine archive still resumes and completes.
        std::fs::write(&manifest_path, pristine).unwrap();
        run_sweep(&resume_args).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_specs_flow_through_to_the_partition() {
        let options = parse_sweep(&args(&["--shard", "1/2"])).unwrap();
        let shard = ShardSpec::parse(options.shard.as_deref().unwrap()).unwrap();
        assert!(shard.owns(1) && !shard.owns(2));
        assert!(ShardSpec::parse("2/2").is_err());
    }
}
