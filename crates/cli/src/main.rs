//! `harp` — regenerate every table and figure of the HARP reproduction.
//!
//! Usage:
//!
//! ```text
//! harp <experiment> [--full] [--long-code] [--json PATH]
//!
//! experiments:
//!   fig2      wasted storage vs. RBER per repair granularity
//!   table2    combinatorial amplification of at-risk bits
//!   fig4      per-bit post-correction error probability distributions
//!   fig6      direct-error coverage vs. profiling rounds
//!   fig7      bootstrapping-round distributions
//!   fig8      missed indirect errors vs. profiling rounds
//!   fig9      secondary-ECC correction capability (both panels)
//!   fig10     data-retention BER case study
//!   summary   the paper's headline speedup claims
//!   ablation  data-pattern / transparency / secondary-ECC / code-length ablations
//!   ext-bch     extension 1: double-error-correcting BCH on-die ECC
//!   ext-beer    extension 2: BEER-style reverse engineering of the on-die ECC,
//!               including cross-family (SEC Hamming + SEC-DED) equivalent-code
//!               reconstruction from visible-error profiles
//!   ext-module  extension 3: secondary-ECC layout across a multi-chip rank,
//!               stress-testing all three on-die ECC families (SEC Hamming,
//!               SEC-DED, DEC BCH) through the generic burst module path
//!   ext-repair  extension 4: repair-capacity planning (Table 1) from the
//!               exact post-correction error profiles of all three families
//!   ext-vrt     extension 5: VRT errors under reactive scrubbing
//!   ext-codes   extension 6: one generic HARP campaign across Hamming / SEC-DED / BCH
//!   ext-traffic extension 7: live-traffic co-scheduling — demand-read SLO
//!               curves vs. scrub aggressiveness, code family, and repair
//!               mechanism under a deterministic event clock
//!   extensions  all seven extensions, in order
//!   all       everything above, in order (paper experiments only)
//!
//! options:
//!   --full       use the paper-scale Monte-Carlo configuration (slow)
//!   --long-code  use a (136, 128) on-die ECC code instead of (71, 64)
//!   --json PATH  additionally dump the raw result as a structured text dump
//!                (Debug-rendered by the vendored offline serde_json stand-in,
//!                not strict JSON; see vendor/serde_json)
//!
//! tooling subcommands (their own flags; see BENCHMARKS.md and ROADMAP.md):
//!   bench-export [--check] [--input PATH] [--output-dir DIR]
//!                persist each bench group's medians as BENCH_<group>.json
//!                (default: runs `cargo bench --workspace` with the
//!                machine-readable hook); --check validates the files
//!   sweep [--full] [--long-code] [--checkpoint-dir DIR]
//!         [--checkpoint-interval N] [--resume] [--shard i/N] [--out PATH]
//!                run the active-phase coverage sweep as a resumable
//!                campaign: checkpoint every N rounds into DIR, resume from
//!                an archive, or run as worker i of N and persist a
//!                shard-output file for `merge`
//!   merge FILE...
//!                fold shard-output files back into the single-process
//!                sweep report, validating completeness
//!   lint [--check] [--json PATH] [--root DIR]
//!                static invariant analysis over the workspace source:
//!                panic-freedom, determinism discipline, RNG salt
//!                discipline, bench-registry coherence, scalar-twin
//!                coverage; --check exits non-zero on findings (CI gate)
//!   submit [--addr HOST:PORT] [--full] [--long-code] [--rounds N]
//!          [--codes N] [--words N] [--profilers NAME,...]
//!                submit a sweep job to a running `harpd serve` daemon
//!   watch JOB [--addr HOST:PORT]
//!                stream a job's round-by-round coverage until it ends
//!   jobs / cancel JOB / shutdown [--addr HOST:PORT]
//!                list the daemon's jobs, cancel one, or stop the daemon
//!                (checkpointing running jobs); see ROADMAP.md for the
//!                wire protocol and job lifecycle
//! ```

use std::process::ExitCode;

mod bench_export;
mod client_cli;
mod sweep_cli;

use harp_sim::experiments::{
    ablation, ext_bch, ext_beer, ext_codes, ext_module, ext_repair, ext_traffic, ext_vrt, fig10,
    fig2, fig4, fig6, fig7, fig8, fig9, headline, sweep, table2,
};
use harp_sim::EvaluationConfig;

mod cli {
    //! Minimal hand-rolled argument parsing (no external CLI dependency).

    /// Parsed command-line options.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Options {
        /// The experiment to run.
        pub experiment: String,
        /// Use the paper-scale configuration.
        pub full: bool,
        /// Use the (136, 128) code.
        pub long_code: bool,
        /// Optional path for a JSON dump of the result.
        pub json: Option<String>,
    }

    /// Parses the argument list (without the program name).
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut experiment = None;
        let mut full = false;
        let mut long_code = false;
        let mut json = None;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => full = true,
                "--long-code" => long_code = true,
                "--json" => {
                    json = Some(
                        iter.next()
                            .ok_or_else(|| "--json requires a path".to_owned())?
                            .clone(),
                    );
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown option: {flag}"));
                }
                name => {
                    if experiment.is_some() {
                        return Err(format!("unexpected extra argument: {name}"));
                    }
                    experiment = Some(name.to_owned());
                }
            }
        }
        Ok(Options {
            experiment: experiment.ok_or_else(|| "missing experiment name".to_owned())?,
            full,
            long_code,
            json,
        })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(list: &[&str]) -> Vec<String> {
            list.iter().map(|s| s.to_string()).collect()
        }

        #[test]
        fn parses_experiment_and_flags() {
            let opts = parse(&args(&["fig6", "--full", "--long-code"])).unwrap();
            assert_eq!(opts.experiment, "fig6");
            assert!(opts.full);
            assert!(opts.long_code);
            assert_eq!(opts.json, None);
        }

        #[test]
        fn parses_json_path() {
            let opts = parse(&args(&["fig2", "--json", "/tmp/out.json"])).unwrap();
            assert_eq!(opts.json.as_deref(), Some("/tmp/out.json"));
        }

        #[test]
        fn rejects_missing_experiment_and_unknown_flags() {
            assert!(parse(&args(&[])).is_err());
            assert!(parse(&args(&["fig2", "--bogus"])).is_err());
            assert!(parse(&args(&["fig2", "--json"])).is_err());
            assert!(parse(&args(&["fig2", "extra"])).is_err());
        }
    }
}

fn config_for(options: &cli::Options) -> EvaluationConfig {
    let mut config = if options.full {
        EvaluationConfig::paper_scale()
    } else {
        EvaluationConfig::quick()
    };
    if options.long_code {
        config = config.with_long_code();
    }
    config
}

/// Writes the raw result where `--json PATH` asked for it. With the vendored
/// offline `serde_json` stand-in this is a Debug-rendered structured dump,
/// not strict JSON; swapping the real serde/serde_json back in (see the root
/// manifest) restores strict JSON without touching this code.
fn dump_json<T: serde::Serialize>(path: &Option<String>, value: &T) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(err) = std::fs::write(path, json) {
                    eprintln!("warning: could not write {path}: {err}");
                } else {
                    eprintln!("wrote raw results to {path} (Debug-rendered structured dump)");
                }
            }
            Err(err) => eprintln!("warning: could not serialize results: {err}"),
        }
    }
}

fn run_experiment(options: &cli::Options) -> Result<(), String> {
    let config = config_for(options);
    match options.experiment.as_str() {
        "fig2" => {
            let result = fig2::run();
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "table2" => {
            let result = table2::run();
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "fig4" => {
            let result = fig4::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "fig6" => {
            let result = fig6::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "fig7" => {
            let result = fig7::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "fig8" => {
            let result = fig8::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "fig9" => {
            let result = fig9::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "fig10" => {
            let result = fig10::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "summary" => {
            let result = headline::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ablation" => {
            let result = ablation::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-bch" => {
            let result = ext_bch::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-beer" => {
            let result = ext_beer::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-module" => {
            let result = ext_module::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-repair" => {
            let result = ext_repair::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-vrt" => {
            let result = ext_vrt::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-codes" => {
            let result = ext_codes::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "ext-traffic" => {
            let result = ext_traffic::run(&config);
            println!("{}", result.render());
            dump_json(&options.json, &result);
        }
        "extensions" => {
            println!("{}", ext_bch::run(&config).render());
            println!("{}", ext_beer::run(&config).render());
            println!("{}", ext_module::run(&config).render());
            println!("{}", ext_repair::run(&config).render());
            println!("{}", ext_vrt::run(&config).render());
            println!("{}", ext_codes::run(&config).render());
            println!("{}", ext_traffic::run(&config).render());
        }
        "all" => {
            println!("{}", fig2::run().render());
            println!("{}", table2::run().render());
            println!("{}", fig4::run(&config).render());
            // Figs. 6 and 7 share one sweep; Fig. 9 needs HARP-A as well.
            let active_sweep = sweep::run_coverage_sweep(&config, &fig6::PROFILERS);
            println!("{}", fig6::from_sweep(&active_sweep).render());
            println!("{}", fig7::from_sweep(&active_sweep).render());
            println!("{}", fig8::run(&config).render());
            let fig9_sweep = sweep::run_coverage_sweep(&config, &fig9::PROFILERS);
            let fig9_result = fig9::from_sweep(&fig9_sweep);
            println!("{}", fig9_result.render());
            let fig10_result = fig10::run(&config);
            println!("{}", fig10_result.render());
            println!(
                "{}",
                headline::summarize(&config, &fig9_result, &fig10_result).render()
            );
        }
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The bench-export tooling subcommand has its own flag set and no
    // experiment semantics, so it bypasses the experiment parser entirely.
    if args.first().map(String::as_str) == Some("bench-export") {
        return match bench_export::run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: harp bench-export [--check] [--input PATH] [--output-dir DIR]");
                ExitCode::FAILURE
            }
        };
    }
    // Likewise for the workspace invariant analyzer (see crates/lint).
    if args.first().map(String::as_str) == Some("lint") {
        return match harp_lint::run_cli(&args[1..]) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: harp lint [--check] [--json PATH] [--root DIR]");
                ExitCode::from(2)
            }
        };
    }
    // Likewise for the checkpointed-sweep worker and merge coordinator.
    if args.first().map(String::as_str) == Some("sweep") {
        return match sweep_cli::run_sweep(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!(
                    "usage: harp sweep [--full] [--long-code] [--checkpoint-dir DIR] \
                     [--checkpoint-interval N] [--resume] [--shard i/N] [--out PATH]"
                );
                ExitCode::FAILURE
            }
        };
    }
    // The daemon-client subcommands talk to a running `harpd serve`.
    type ClientCommand = fn(&[String]) -> Result<(), String>;
    let client_command: Option<(ClientCommand, &str)> = match args.first().map(String::as_str) {
        Some("submit") => Some((
            client_cli::run_submit,
            "harp submit [--addr HOST:PORT] [--full] [--long-code] [--rounds N] \
             [--codes N] [--words N] [--profilers NAME,NAME,...]",
        )),
        Some("watch") => Some((client_cli::run_watch, "harp watch JOB [--addr HOST:PORT]")),
        Some("jobs") => Some((client_cli::run_jobs, "harp jobs [--addr HOST:PORT]")),
        Some("cancel") => Some((client_cli::run_cancel, "harp cancel JOB [--addr HOST:PORT]")),
        Some("shutdown") => Some((client_cli::run_shutdown, "harp shutdown [--addr HOST:PORT]")),
        _ => None,
    };
    if let Some((run, usage)) = client_command {
        return match run(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: {usage}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("merge") {
        return match sweep_cli::run_merge(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("usage: harp merge SHARD_0_of_N.json SHARD_1_of_N.json ...");
                ExitCode::FAILURE
            }
        };
    }
    let options = match cli::parse(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: harp <fig2|table2|fig4|fig6|fig7|fig8|fig9|fig10|summary|ablation|\
                 ext-bch|ext-beer|ext-module|ext-repair|ext-vrt|ext-codes|ext-traffic|\
                 extensions|all> \
                 [--full] [--long-code] [--json PATH]\n       \
                 harp sweep [--checkpoint-dir DIR] [--resume] [--shard i/N] ... | \
                 harp merge FILE... | harp bench-export [--check] | harp lint [--check] | \
                 harp <submit|watch|jobs|cancel|shutdown> [--addr HOST:PORT] ..."
            );
            return ExitCode::from(2);
        }
    };
    match run_experiment(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
