//! `harp bench-export` — persist the bench groups' medians as the repo's
//! perf trajectory.
//!
//! The vendored criterion stand-in prints one strict-JSON `bench-json` line
//! per benchmark when `HARP_BENCH_JSON` is set (see `vendor/criterion`).
//! This subcommand runs `cargo bench --workspace` with that hook (or parses
//! a previously captured log via `--input`), groups the records by the
//! first `/`-segment of each benchmark id, and writes one
//! `BENCH_<group>.json` file per group with the medians, throughput, git
//! revision, and date — the format documented in `BENCHMARKS.md`.
//!
//! `--check` is the CI gate: it verifies that every registered bench group
//! has a schema-valid `BENCH_<group>.json` on disk. It is a format/coverage
//! gate, **not** a perf gate — no timing is compared.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Top-level bench groups (the first `/`-segment of every benchmark id
/// registered in `crates/bench/benches/`). `--check` fails if any of these
/// lacks a schema-valid `BENCH_<group>.json`.
pub const REGISTERED_GROUPS: &[&str] = &[
    "beer_reconstruction",
    "bitsliced_kernel",
    "campaign_path",
    "checkpoint_path",
    "controller_path",
    "core",
    "ext1",
    "ext2",
    "ext3",
    "ext4",
    "ext5",
    "fig02",
    "fig04",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "module_path",
    "read_path",
    "server_path",
    "syndrome_kernel",
    "table02",
    "traffic_path",
];

/// One benchmark's parsed `bench-json` record.
#[derive(Debug, Clone, PartialEq)]
struct BenchRecord {
    id: String,
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

/// Parsed `bench-export` options.
#[derive(Debug, Default)]
struct Options {
    /// Validate existing `BENCH_*.json` files instead of producing them.
    check: bool,
    /// Parse a captured bench log instead of running `cargo bench`.
    input: Option<PathBuf>,
    /// Directory holding the `BENCH_*.json` files (default: current dir,
    /// i.e. the repo root when invoked from it).
    output_dir: PathBuf,
}

/// Runs the subcommand with the arguments after `bench-export`.
pub fn run(args: &[String]) -> Result<(), String> {
    let options = parse_args(args)?;
    if options.check {
        return check(&options.output_dir);
    }
    let log = match &options.input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|err| format!("could not read {}: {err}", path.display()))?,
        None => run_cargo_bench()?,
    };
    let records = parse_log(&log);
    if records.is_empty() {
        return Err(
            "no bench-json records found; is the vendored criterion's HARP_BENCH_JSON hook active?"
                .to_owned(),
        );
    }
    export(&records, &options.output_dir)
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        output_dir: PathBuf::from("."),
        ..Options::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => options.check = true,
            "--input" => {
                options.input = Some(PathBuf::from(iter.next().ok_or("--input requires a path")?));
            }
            "--output-dir" => {
                options.output_dir =
                    PathBuf::from(iter.next().ok_or("--output-dir requires a path")?);
            }
            other => return Err(format!("unknown bench-export option: {other}")),
        }
    }
    if options.check && options.input.is_some() {
        return Err("--check and --input are mutually exclusive".to_owned());
    }
    Ok(options)
}

/// Runs every workspace bench with the machine-readable hook enabled and
/// returns the combined stdout.
fn run_cargo_bench() -> Result<String, String> {
    eprintln!("running `cargo bench --workspace` (this takes a while)...");
    let output = Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()))
        .args(["bench", "--workspace"])
        .env("HARP_BENCH_JSON", "1")
        .output()
        .map_err(|err| format!("could not run cargo bench: {err}"))?;
    if !output.status.success() {
        return Err(format!(
            "cargo bench failed with {}: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    String::from_utf8(output.stdout).map_err(|err| format!("non-UTF-8 bench output: {err}"))
}

/// Extracts every `bench-json` record from a bench log.
fn parse_log(log: &str) -> Vec<BenchRecord> {
    log.lines().filter_map(parse_line).collect()
}

/// Parses one `bench-json {...}` line (the exact flat shape the vendored
/// criterion prints; benchmark ids never contain quotes or escapes).
fn parse_line(line: &str) -> Option<BenchRecord> {
    let json = line.trim().strip_prefix("bench-json ")?;
    let id = string_field(json, "id")?;
    Some(BenchRecord {
        id: id.to_owned(),
        median_ns: number_field(json, "median_ns")?,
        mean_ns: number_field(json, "mean_ns")?,
        min_ns: number_field(json, "min_ns")?,
        max_ns: number_field(json, "max_ns")?,
        iterations: number_field(json, "iterations")? as u64,
    })
}

/// Position just past `"key":` (plus any whitespace) in a JSON text.
fn after_key(json: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    Some(start + json[start..].len() - json[start..].trim_start().len())
}

/// Finds `"key": "<value>"` in a JSON text.
fn string_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let start = after_key(json, key)?;
    let value = json[start..].strip_prefix('"')?;
    let end = value.find('"')?;
    Some(&value[..end])
}

/// Finds `"key": <number>` in a JSON text.
fn number_field(json: &str, key: &str) -> Option<f64> {
    let start = after_key(json, key)?;
    let end = json[start..]
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .map_or(json.len(), |offset| start + offset);
    json[start..end].parse().ok()
}

/// The top-level group of a benchmark id (everything before the first `/`).
fn group_of(id: &str) -> &str {
    id.split('/').next().unwrap_or(id)
}

/// Writes one `BENCH_<group>.json` per group represented in `records`.
fn export(records: &[BenchRecord], output_dir: &Path) -> Result<(), String> {
    let git_rev = git_revision();
    let date = civil_date_today();
    let mut groups: Vec<&str> = records.iter().map(|r| group_of(&r.id)).collect();
    groups.sort_unstable();
    groups.dedup();
    for group in &groups {
        let path = output_dir.join(format!("BENCH_{group}.json"));
        let body = render_group(group, &git_rev, &date, records);
        std::fs::write(&path, body)
            .map_err(|err| format!("could not write {}: {err}", path.display()))?;
        println!("wrote {}", path.display());
    }
    for group in REGISTERED_GROUPS {
        if !groups.contains(group) {
            eprintln!("warning: registered group {group} produced no bench-json records");
        }
    }
    Ok(())
}

/// Renders one group's `BENCH_<group>.json` body (strict JSON, stable key
/// order, one entry per benchmark id in log order).
fn render_group(group: &str, git_rev: &str, date: &str, records: &[BenchRecord]) -> String {
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"group\": \"{group}\",\n"));
    body.push_str(&format!("  \"git_rev\": \"{git_rev}\",\n"));
    body.push_str(&format!("  \"date\": \"{date}\",\n"));
    body.push_str("  \"entries\": [\n");
    let entries: Vec<&BenchRecord> = records
        .iter()
        .filter(|r| group_of(&r.id) == group)
        .collect();
    for (index, record) in entries.iter().enumerate() {
        let throughput = if record.median_ns > 0.0 {
            1e9 / record.median_ns
        } else {
            0.0
        };
        body.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.3}, \"mean_ns\": {:.3}, \
             \"min_ns\": {:.3}, \"max_ns\": {:.3}, \"iterations\": {}, \
             \"throughput_iters_per_sec\": {:.3}}}{}\n",
            record.id,
            record.median_ns,
            record.mean_ns,
            record.min_ns,
            record.max_ns,
            record.iterations,
            throughput,
            if index + 1 < entries.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    body
}

/// Validates that every registered group has a schema-valid
/// `BENCH_<group>.json` in `dir`; collects all problems before failing.
fn check(dir: &Path) -> Result<(), String> {
    let mut problems = Vec::new();
    for group in REGISTERED_GROUPS {
        let path = dir.join(format!("BENCH_{group}.json"));
        match std::fs::read_to_string(&path) {
            Ok(body) => {
                if let Err(problem) = validate_group_file(group, &body) {
                    problems.push(format!("{}: {problem}", path.display()));
                }
            }
            Err(err) => problems.push(format!("{}: {err}", path.display())),
        }
    }
    if problems.is_empty() {
        println!(
            "bench trajectory OK: {} groups with schema-valid BENCH_*.json",
            REGISTERED_GROUPS.len()
        );
        Ok(())
    } else {
        Err(format!(
            "bench trajectory check failed:\n  {}",
            problems.join("\n  ")
        ))
    }
}

/// Schema validation for one group file: right group name, provenance
/// fields present, and at least one entry carrying a median.
fn validate_group_file(group: &str, body: &str) -> Result<(), String> {
    match string_field(body, "group") {
        Some(found) if found == group => {}
        Some(found) => return Err(format!("group field is {found:?}, expected {group:?}")),
        None => return Err("missing \"group\" field".to_owned()),
    }
    if string_field(body, "git_rev").is_none_or(str::is_empty) {
        return Err("missing \"git_rev\" field".to_owned());
    }
    match string_field(body, "date") {
        Some(date) if date.len() == 10 && date.as_bytes()[4] == b'-' => {}
        _ => return Err("missing or malformed \"date\" field (want YYYY-MM-DD)".to_owned()),
    }
    if !body.contains("\"entries\"") {
        return Err("missing \"entries\" array".to_owned());
    }
    if string_field(body, "id").is_none() || number_field(body, "median_ns").is_none() {
        return Err("entries carry no id/median_ns records".to_owned());
    }
    Ok(())
}

/// The current git revision (short), or `"unknown"` outside a repository.
fn git_revision() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Today's date as `YYYY-MM-DD` (UTC), from the system clock with no date
/// dependency: days-from-epoch to civil conversion (Howard Hinnant's
/// algorithm).
fn civil_date_today() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_from_days((secs / 86_400) as i64)
}

/// Converts days since 1970-01-01 to `YYYY-MM-DD`.
fn civil_from_days(days: i64) -> String {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "bench-json {\"id\":\"syndrome_kernel/hamming_71_64/kernel_single\",\
                        \"median_ns\":123.5,\"mean_ns\":130.25,\"min_ns\":110,\"max_ns\":150,\
                        \"iterations\":100000}";

    #[test]
    fn parses_bench_json_lines_and_ignores_noise() {
        let record = parse_line(LINE).unwrap();
        assert_eq!(record.id, "syndrome_kernel/hamming_71_64/kernel_single");
        assert_eq!(record.median_ns, 123.5);
        assert_eq!(record.mean_ns, 130.25);
        assert_eq!(record.iterations, 100_000);
        assert_eq!(parse_line("bench something    12 ns mean"), None);
        assert_eq!(parse_line("running 3 tests"), None);
        let log = format!("noise\n{LINE}\nmore noise\n");
        assert_eq!(parse_log(&log).len(), 1);
    }

    #[test]
    fn groups_are_the_first_id_segment() {
        assert_eq!(
            group_of("syndrome_kernel/hamming_71_64/kernel_single"),
            "syndrome_kernel"
        );
        assert_eq!(group_of("fig02/wasted_storage_full_sweep"), "fig02");
        assert_eq!(group_of("no_slash"), "no_slash");
    }

    #[test]
    fn rendered_group_files_pass_their_own_check() {
        let record = parse_line(LINE).unwrap();
        let body = render_group("syndrome_kernel", "abc1234", "2026-08-08", &[record]);
        assert!(validate_group_file("syndrome_kernel", &body).is_ok());
        // Wrong group name, missing provenance, and empty entries all fail.
        assert!(validate_group_file("read_path", &body).is_err());
        assert!(validate_group_file("syndrome_kernel", "{}").is_err());
        let empty = render_group("syndrome_kernel", "abc1234", "2026-08-08", &[]);
        assert!(validate_group_file("syndrome_kernel", &empty).is_err());
    }

    #[test]
    fn civil_date_conversion_matches_known_dates() {
        assert_eq!(civil_from_days(0), "1970-01-01");
        assert_eq!(civil_from_days(19_723), "2024-01-01");
        assert_eq!(civil_from_days(20_673), "2026-08-08");
        assert_eq!(civil_from_days(11_016), "2000-02-29");
    }

    #[test]
    fn export_and_check_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("harp_bench_export_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let record = parse_line(LINE).unwrap();
        export(&[record], &dir).unwrap();
        let path = dir.join("BENCH_syndrome_kernel.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(validate_group_file("syndrome_kernel", &body).is_ok());
        assert!(body.contains("\"throughput_iters_per_sec\""));
        // The full check still fails because the other registered groups are
        // absent from the temp dir.
        assert!(check(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn option_parsing_rejects_conflicts_and_unknown_flags() {
        let to_args =
            |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert!(parse_args(&to_args(&["--check"])).unwrap().check);
        let opts = parse_args(&to_args(&["--input", "log.txt", "--output-dir", "out"])).unwrap();
        assert_eq!(opts.input.as_deref(), Some(Path::new("log.txt")));
        assert_eq!(opts.output_dir, Path::new("out"));
        assert!(parse_args(&to_args(&["--check", "--input", "x"])).is_err());
        assert!(parse_args(&to_args(&["--bogus"])).is_err());
        assert!(parse_args(&to_args(&["--input"])).is_err());
    }

    #[test]
    fn every_registered_group_is_sorted_and_unique() {
        let mut sorted = REGISTERED_GROUPS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, REGISTERED_GROUPS);
    }
}
