//! Gaussian elimination and linear-system solving over GF(2).
//!
//! The HARP paper uses the Z3 SAT solver for two tasks: deciding whether a
//! combination of codeword bits can all be *charged* (store '1') under some
//! data pattern, and enumerating the post-correction errors a set of
//! pre-correction at-risk bits can produce. Because on-die ECC is a linear
//! block code and the "charged" constraints are affine equations over GF(2),
//! both tasks reduce to linear algebra. This module provides the exact solver
//! that replaces Z3 in this reproduction (see DESIGN.md §2).

use serde::{Deserialize, Serialize};

use crate::{BitVec, Gf2Matrix};

/// The reduced row echelon form of a matrix together with its pivot columns.
///
/// Produced by [`row_echelon`]; consumed by [`solve`] and
/// [`RowEchelon::nullspace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowEchelon {
    /// The matrix in reduced row echelon form.
    pub rref: Gf2Matrix,
    /// For each pivot row (in order), the column index of its leading one.
    pub pivots: Vec<usize>,
}

impl RowEchelon {
    /// The rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }

    /// Returns a basis of the null space (vectors `x` with `A·x = 0`).
    ///
    /// # Example
    ///
    /// ```
    /// use harp_gf2::{BitVec, Gf2Matrix, solve::row_echelon};
    ///
    /// let a = Gf2Matrix::from_rows(&[BitVec::from_bools(&[true, true, false])]);
    /// let basis = row_echelon(&a).nullspace();
    /// assert_eq!(basis.len(), 2);
    /// for v in &basis {
    ///     assert!(a.mul_vec(v).is_zero());
    /// }
    /// ```
    pub fn nullspace(&self) -> Vec<BitVec> {
        let cols = self.rref.cols();
        let mut is_pivot = vec![false; cols];
        for &p in &self.pivots {
            is_pivot[p] = true;
        }
        let mut basis = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for free in 0..cols {
            if is_pivot[free] {
                continue;
            }
            let mut v = BitVec::zeros(cols);
            v.set(free, true);
            for (row, &p) in self.pivots.iter().enumerate() {
                if self.rref.get(row, free) {
                    v.set(p, true);
                }
            }
            basis.push(v);
        }
        basis
    }
}

/// Computes the reduced row echelon form of `a`.
///
/// # Example
///
/// ```
/// use harp_gf2::{Gf2Matrix, solve::row_echelon};
///
/// let re = row_echelon(&Gf2Matrix::identity(5));
/// assert_eq!(re.rank(), 5);
/// ```
pub fn row_echelon(a: &Gf2Matrix) -> RowEchelon {
    let mut m = a.clone();
    let rows = m.rows();
    let cols = m.cols();
    let mut pivots = Vec::new();
    let mut pivot_row = 0usize;
    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Find a row at or below pivot_row with a one in this column.
        let found = (pivot_row..rows).find(|&r| m.get(r, col));
        let Some(r) = found else { continue };
        m.swap_rows(pivot_row, r);
        // Eliminate the column from every other row.
        for other in 0..rows {
            if other != pivot_row && m.get(other, col) {
                m.xor_row_into(pivot_row, other);
            }
        }
        pivots.push(col);
        pivot_row += 1;
    }
    RowEchelon { rref: m, pivots }
}

/// Returns a basis of the subspace of GF(2)^`unknowns` orthogonal to every
/// relation row: all `x` with `r · x = 0` for each `r` in `relations`.
///
/// This is the constraint-system primitive of BEER-style reconstruction in
/// `harp_beer`: each observed miscorrection contributes one relation row over
/// the unknown parity-check data columns, and every row of the reconstructed
/// parity block must lie in the space this function returns. An empty
/// relation set leaves the full space free (the standard basis); an empty
/// returned basis means the relations admit only the zero assignment — i.e.
/// the constraint system is inconsistent with any non-degenerate code.
///
/// # Panics
///
/// Panics if any relation row's length differs from `unknowns`.
///
/// # Example
///
/// ```
/// use harp_gf2::{BitVec, solve::nullspace_of_relations};
///
/// // One relation x0 ⊕ x1 ⊕ x2 = 0 over four unknowns.
/// let relations = [BitVec::from_indices(4, [0, 1, 2])];
/// let basis = nullspace_of_relations(&relations, 4);
/// assert_eq!(basis.len(), 3);
/// for v in &basis {
///     assert!(!relations[0].dot(v));
/// }
///
/// // No relations at all: the whole space is free.
/// assert_eq!(nullspace_of_relations(&[], 4).len(), 4);
/// ```
pub fn nullspace_of_relations(relations: &[BitVec], unknowns: usize) -> Vec<BitVec> {
    for (i, row) in relations.iter().enumerate() {
        assert_eq!(
            row.len(),
            unknowns,
            "relation row {i} has length {}, expected {unknowns}",
            row.len()
        );
    }
    if relations.is_empty() {
        return (0..unknowns)
            .map(|i| BitVec::from_indices(unknowns, [i]))
            .collect();
    }
    row_echelon(&Gf2Matrix::from_rows(relations)).nullspace()
}

/// Outcome of solving a linear system `A·x = b` over GF(2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinearSolution {
    /// The system has at least one solution; `particular` is one of them and
    /// `nullspace` is a basis of the homogeneous solutions (the full solution
    /// set is `particular + span(nullspace)`).
    Solvable {
        /// A particular solution `x` with `A·x = b`.
        particular: BitVec,
        /// Basis of the homogeneous solution space.
        nullspace: Vec<BitVec>,
    },
    /// The system has no solution.
    Infeasible,
}

impl LinearSolution {
    /// Returns `true` if the system is solvable.
    pub fn is_solvable(&self) -> bool {
        matches!(self, LinearSolution::Solvable { .. })
    }

    /// Returns the particular solution if the system is solvable.
    pub fn particular(&self) -> Option<&BitVec> {
        match self {
            LinearSolution::Solvable { particular, .. } => Some(particular),
            LinearSolution::Infeasible => None,
        }
    }
}

/// Solves `A·x = b` over GF(2).
///
/// Returns a particular solution and a null-space basis, or
/// [`LinearSolution::Infeasible`] if no solution exists.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
///
/// # Example
///
/// ```
/// use harp_gf2::{BitVec, Gf2Matrix, solve};
///
/// // x0 ^ x1 = 1, x1 ^ x2 = 0
/// let a = Gf2Matrix::from_rows(&[
///     BitVec::from_bools(&[true, true, false]),
///     BitVec::from_bools(&[false, true, true]),
/// ]);
/// let b = BitVec::from_indices(2, [0]);
/// let solution = solve(&a, &b);
/// let x = solution.particular().expect("system is solvable");
/// assert_eq!(a.mul_vec(x), b);
/// ```
pub fn solve(a: &Gf2Matrix, b: &BitVec) -> LinearSolution {
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    // Eliminate on the augmented matrix [A | b].
    let b_col = Gf2Matrix::from_fn(a.rows(), 1, |i, _| b.get(i));
    let augmented = a.hstack(&b_col);
    let re = row_echelon(&augmented);
    let n = a.cols();

    // Infeasible iff some pivot lands in the augmented column.
    if re.pivots.contains(&n) {
        return LinearSolution::Infeasible;
    }

    // Back-substitute: particular solution sets every free variable to zero,
    // so each pivot variable equals the augmented entry of its row.
    let mut particular = BitVec::zeros(n);
    for (row, &p) in re.pivots.iter().enumerate() {
        if re.rref.get(row, n) {
            particular.set(p, true);
        }
    }

    // Null space of A (not of the augmented matrix).
    let re_a = RowEchelon {
        rref: re.rref.col_slice(0, n),
        pivots: re.pivots.clone(),
    };
    LinearSolution::Solvable {
        particular,
        nullspace: re_a.nullspace(),
    }
}

/// Returns `true` if `A·x = b` has at least one solution.
///
/// Convenience wrapper over [`solve`] for feasibility-only queries (the hot
/// path of the chargeability analysis).
///
/// # Example
///
/// ```
/// use harp_gf2::{BitVec, Gf2Matrix, solve::is_feasible};
///
/// // x0 = 1 and x0 = 0 cannot hold simultaneously.
/// let a = Gf2Matrix::from_rows(&[
///     BitVec::from_bools(&[true]),
///     BitVec::from_bools(&[true]),
/// ]);
/// let b = BitVec::from_indices(2, [0]);
/// assert!(!is_feasible(&a, &b));
/// ```
pub fn is_feasible(a: &Gf2Matrix, b: &BitVec) -> bool {
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    let b_col = Gf2Matrix::from_fn(a.rows(), 1, |i, _| b.get(i));
    let augmented = a.hstack(&b_col);
    let re = row_echelon(&augmented);
    !re.pivots.iter().any(|&p| p == a.cols())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rref_of_identity_is_identity() {
        let id = Gf2Matrix::identity(6);
        let re = row_echelon(&id);
        assert_eq!(re.rref, id);
        assert_eq!(re.pivots, vec![0, 1, 2, 3, 4, 5]);
        assert!(re.nullspace().is_empty());
    }

    #[test]
    fn rref_zero_matrix_has_rank_zero() {
        let z = Gf2Matrix::zeros(3, 5);
        let re = row_echelon(&z);
        assert_eq!(re.rank(), 0);
        assert_eq!(re.nullspace().len(), 5);
    }

    #[test]
    fn nullspace_vectors_are_in_kernel() {
        let a = Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, true, false, true, false]),
            BitVec::from_bools(&[false, true, true, false, true]),
            BitVec::from_bools(&[true, false, true, true, true]),
        ]);
        let re = row_echelon(&a);
        let basis = re.nullspace();
        assert_eq!(basis.len(), 5 - re.rank());
        for v in &basis {
            assert!(a.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn relation_nullspace_spans_exactly_the_orthogonal_space() {
        let relations = [
            BitVec::from_indices(5, [0, 1, 2]),
            BitVec::from_indices(5, [1, 3, 4]),
        ];
        let basis = nullspace_of_relations(&relations, 5);
        assert_eq!(basis.len(), 3);
        for v in &basis {
            for r in &relations {
                assert!(!r.dot(v), "basis vector violates a relation");
            }
        }
    }

    #[test]
    fn empty_relation_set_frees_the_whole_space() {
        let basis = nullspace_of_relations(&[], 6);
        assert_eq!(basis.len(), 6);
        for (i, v) in basis.iter().enumerate() {
            assert_eq!(v, &BitVec::from_indices(6, [i]));
        }
    }

    #[test]
    fn full_rank_relations_leave_only_the_zero_assignment() {
        // Four weight-3 rows over four unknowns with rank 4: the nullspace
        // is trivial, reported as an empty basis.
        let relations = [
            BitVec::from_indices(4, [0, 1, 2]),
            BitVec::from_indices(4, [0, 1, 3]),
            BitVec::from_indices(4, [0, 2, 3]),
            BitVec::from_indices(4, [1, 2, 3]),
        ];
        assert!(nullspace_of_relations(&relations, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "relation row 1 has length 3")]
    fn mismatched_relation_row_length_panics() {
        nullspace_of_relations(&[BitVec::zeros(5), BitVec::zeros(3)], 5);
    }

    #[test]
    fn solve_consistent_system_returns_valid_solution() {
        let a = Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, true, false, false]),
            BitVec::from_bools(&[false, true, true, false]),
            BitVec::from_bools(&[false, false, true, true]),
        ]);
        let b = BitVec::from_indices(3, [0, 2]);
        let sol = solve(&a, &b);
        let x = sol.particular().expect("solvable");
        assert_eq!(a.mul_vec(x), b);
        assert!(sol.is_solvable());
        assert!(is_feasible(&a, &b));
    }

    #[test]
    fn solve_inconsistent_system_is_infeasible() {
        // x0 ^ x1 = 0, x0 ^ x1 = 1.
        let a = Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, true]),
            BitVec::from_bools(&[true, true]),
        ]);
        let b = BitVec::from_indices(2, [1]);
        assert_eq!(solve(&a, &b), LinearSolution::Infeasible);
        assert!(!is_feasible(&a, &b));
        assert!(solve(&a, &b).particular().is_none());
    }

    #[test]
    fn solve_underdetermined_system_exposes_full_solution_set() {
        // One equation over three unknowns: x0 ^ x2 = 1.
        let a = Gf2Matrix::from_rows(&[BitVec::from_bools(&[true, false, true])]);
        let b = BitVec::from_indices(1, [0]);
        match solve(&a, &b) {
            LinearSolution::Solvable {
                particular,
                nullspace,
            } => {
                assert_eq!(a.mul_vec(&particular), b);
                assert_eq!(nullspace.len(), 2);
                // Every combination of particular + nullspace elements solves the system.
                for v in &nullspace {
                    let x = &particular ^ v;
                    assert_eq!(a.mul_vec(&x), b);
                }
            }
            LinearSolution::Infeasible => panic!("system should be solvable"),
        }
    }

    #[test]
    fn solve_homogeneous_system_returns_zero_particular() {
        let a = Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, true, true]),
            BitVec::from_bools(&[false, true, true]),
        ]);
        let b = BitVec::zeros(2);
        let sol = solve(&a, &b);
        let x = sol.particular().unwrap();
        assert!(x.is_zero());
    }

    #[test]
    fn rank_plus_nullity_equals_cols() {
        let a = Gf2Matrix::from_fn(4, 9, |i, j| (i * 3 + j * 7) % 5 < 2);
        let re = row_echelon(&a);
        assert_eq!(re.rank() + re.nullspace().len(), 9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn solve_wrong_rhs_length_panics() {
        solve(&Gf2Matrix::identity(3), &BitVec::zeros(2));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Gf2Matrix> {
            (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
                proptest::collection::vec(proptest::collection::vec(any::<bool>(), c), r).prop_map(
                    move |rows| {
                        let rows: Vec<BitVec> =
                            rows.iter().map(|b| BitVec::from_bools(b)).collect();
                        Gf2Matrix::from_rows(&rows)
                    },
                )
            })
        }

        proptest! {
            #[test]
            fn solutions_satisfy_the_system(
                a in arbitrary_matrix(8, 10),
                b_bits in proptest::collection::vec(any::<bool>(), 8),
            ) {
                let b = BitVec::from_bools(&b_bits[..a.rows()]);
                if let LinearSolution::Solvable { particular, nullspace } = solve(&a, &b) {
                    prop_assert_eq!(a.mul_vec(&particular), b.clone());
                    for v in &nullspace {
                        prop_assert!(a.mul_vec(v).is_zero());
                        let x = &particular ^ v;
                        prop_assert_eq!(a.mul_vec(&x), b.clone());
                    }
                }
            }

            #[test]
            fn feasibility_matches_constructed_rhs(
                a in arbitrary_matrix(8, 10),
                x_bits in proptest::collection::vec(any::<bool>(), 10),
            ) {
                // b built from a known x is always feasible.
                let x = BitVec::from_bools(&x_bits[..a.cols()]);
                let b = a.mul_vec(&x);
                prop_assert!(is_feasible(&a, &b));
                prop_assert!(solve(&a, &b).is_solvable());
            }

            #[test]
            fn rank_is_bounded_and_consistent(a in arbitrary_matrix(8, 10)) {
                let re = row_echelon(&a);
                prop_assert!(re.rank() <= a.rows().min(a.cols()));
                prop_assert_eq!(re.rank() + re.nullspace().len(), a.cols());
                prop_assert_eq!(re.rank(), a.transpose().rank());
            }

            #[test]
            fn rref_row_space_preserved(a in arbitrary_matrix(6, 8)) {
                // Every row of the RREF must be in the row space of A:
                // rank([A; rref_row]) == rank(A).
                let re = row_echelon(&a);
                let rank_a = re.rank();
                for row in re.rref.iter_rows() {
                    let stacked = a.vstack(&Gf2Matrix::from_rows(std::slice::from_ref(row)));
                    prop_assert_eq!(stacked.rank(), rank_a);
                }
            }
        }
    }
}
