//! Packed fixed-length bit vectors over GF(2).
//!
//! [`BitVec`] is the workhorse type of the whole reproduction: codewords,
//! datawords, syndromes, error patterns, data patterns, and parity-check
//! matrix rows are all bit vectors. The representation packs bits into `u64`
//! words (least-significant bit first), so XOR-heavy operations such as
//! syndrome computation run over whole words.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign};

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-length vector over GF(2).
///
/// Bits are addressed from `0` to `len() - 1`. All binary operators require
/// both operands to have the same length and panic otherwise — mixing
/// codewords of different code configurations is a logic error we want to
/// catch loudly during simulation.
///
/// # Example
///
/// ```
/// use harp_gf2::BitVec;
///
/// let mut v = BitVec::zeros(8);
/// v.set(3, true);
/// v.set(5, true);
/// assert_eq!(v.count_ones(), 2);
/// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![3, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::zeros(71);
    /// assert_eq!(v.len(), 71);
    /// assert!(v.is_zero());
    /// ```
    pub fn zeros(len: usize) -> Self {
        let nwords = len.div_ceil(WORD_BITS);
        Self {
            len,
            words: vec![0; nwords],
        }
    }

    /// Creates an all-one vector of `len` bits.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::ones(10);
    /// assert_eq!(v.count_ones(), 10);
    /// ```
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_tail();
        v
    }

    /// Creates a vector from a slice of booleans (`bools[i]` becomes bit `i`).
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::from_bools(&[true, false, true]);
    /// assert!(v.get(0) && !v.get(1) && v.get(2));
    /// ```
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::zeros(bools.len());
        for (i, &b) in bools.iter().enumerate() {
            if b {
                v.set(i, true);
            }
        }
        v
    }

    /// Creates a vector of length `len` with ones at the given bit indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::from_indices(7, [1, 4]);
    /// assert_eq!(v.count_ones(), 2);
    /// ```
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, indices: I) -> Self {
        let mut v = Self::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector of `len` bits from the low bits of `value`
    /// (bit `i` of the vector is bit `i` of `value`).
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::from_u64(4, 0b1010);
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    /// ```
    pub fn from_u64(len: usize, value: u64) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits, got {len}");
        let mut v = Self::zeros(len);
        if len > 0 {
            v.words[0] = if len == 64 {
                value
            } else {
                value & ((1u64 << len) - 1)
            };
        }
        v
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let word = index / WORD_BITS;
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[word] |= mask;
        } else {
            self.words[word] &= !mask;
        }
    }

    /// Flips bit `index` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn flip(&mut self, index: usize) -> bool {
        let new = !self.get(index);
        self.set(index, new);
        new
    }

    /// Returns the number of set bits (Hamming weight).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns the index of the lowest set bit, if any.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// assert_eq!(BitVec::from_indices(8, [5, 6]).first_one(), Some(5));
    /// assert_eq!(BitVec::zeros(8).first_one(), None);
    /// ```
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates over the indices of set bits in increasing order.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::from_indices(70, [0, 63, 64, 69]);
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 69]);
    /// ```
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates over all bits as booleans in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Returns the bits as a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Interprets the first `min(len, 64)` bits as an integer (bit `i` of the
    /// vector becomes bit `i` of the result).
    pub fn to_u64(&self) -> u64 {
        self.words.first().copied().unwrap_or(0)
    }

    /// Returns the dot product (mod 2) of `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let a = BitVec::from_indices(5, [0, 2, 3]);
    /// let b = BitVec::from_indices(5, [2, 3, 4]);
    /// assert_eq!(a.dot(&b), false); // two overlapping ones -> even parity
    /// ```
    pub fn dot(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "dot product length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Returns the parity (XOR of all bits) of the vector.
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Returns a sub-vector containing bits `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > len()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::from_indices(10, [2, 7]);
    /// let s = v.slice(2, 8);
    /// assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 5]);
    /// ```
    pub fn slice(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.len, "invalid slice range");
        let mut out = Self::zeros(end - start);
        for i in start..end {
            if self.get(i) {
                out.set(i - start, true);
            }
        }
        out
    }

    /// Concatenates `self` followed by `other` into a new vector.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let a = BitVec::from_indices(3, [0]);
    /// let b = BitVec::from_indices(2, [1]);
    /// let c = a.concat(&b);
    /// assert_eq!(c.len(), 5);
    /// assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 4]);
    /// ```
    pub fn concat(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.len + other.len);
        for i in self.iter_ones() {
            out.set(i, true);
        }
        for i in other.iter_ones() {
            out.set(self.len + i, true);
        }
        out
    }

    /// Returns the bitwise complement.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let v = BitVec::from_indices(4, [0, 2]);
    /// assert_eq!(v.not().iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    /// ```
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.mask_tail();
        out
    }

    /// Access to the underlying packed words (low bit of word 0 is bit 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Makes `self` an exact copy of `src`, reusing the existing word buffer.
    ///
    /// Unlike `*self = src.clone()`, no allocation occurs once the buffer
    /// capacity matches — this is the building block of the allocation-free
    /// burst read path.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let src = BitVec::from_indices(71, [3, 70]);
    /// let mut dst = BitVec::zeros(71);
    /// dst.copy_from(&src);
    /// assert_eq!(dst, src);
    /// ```
    pub fn copy_from(&mut self, src: &Self) {
        self.len = src.len;
        self.words.clear();
        self.words.extend_from_slice(&src.words);
    }

    /// Makes `self` a copy of the first `len` bits of `src` (the in-place
    /// equivalent of `src.slice(0, len)`), reusing the existing word buffer.
    ///
    /// # Panics
    ///
    /// Panics if `len > src.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let src = BitVec::from_indices(71, [3, 70]);
    /// let mut prefix = BitVec::default();
    /// prefix.copy_prefix_from(&src, 64);
    /// assert_eq!(prefix, src.slice(0, 64));
    /// ```
    pub fn copy_prefix_from(&mut self, src: &Self, len: usize) {
        assert!(
            len <= src.len,
            "prefix of {len} bits out of range for {} bits",
            src.len
        );
        self.len = len;
        self.words.clear();
        self.words
            .extend_from_slice(&src.words[..len.div_ceil(WORD_BITS)]);
        self.mask_tail();
    }

    /// Makes `self` a `len`-bit vector holding the low bits of `value` (the
    /// in-place equivalent of [`BitVec::from_u64`]), reusing the word buffer.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let mut v = BitVec::default();
    /// v.assign_u64(7, 0b101_0010);
    /// assert_eq!(v, BitVec::from_u64(7, 0b101_0010));
    /// ```
    pub fn assign_u64(&mut self, len: usize, value: u64) {
        assert!(len <= 64, "assign_u64 supports at most 64 bits, got {len}");
        self.len = len;
        self.words.clear();
        if len > 0 {
            self.words.push(if len == 64 {
                value
            } else {
                value & ((1u64 << len) - 1)
            });
        }
    }

    /// Makes `self` an all-zero vector of `len` bits, reusing the word buffer
    /// (the in-place equivalent of [`BitVec::zeros`]).
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let mut v = BitVec::from_indices(8, [1, 2]);
    /// v.reset(71);
    /// assert_eq!(v, BitVec::zeros(71));
    /// ```
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(WORD_BITS), 0);
    }

    /// Overwrites the first `src.len()` bits of `self` with `src`, leaving
    /// every later bit (and `self`'s length) untouched. Word-packed and
    /// allocation-free: this is the building block of the in-place
    /// systematic-encode write path.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() > self.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::BitVec;
    /// let mut v = BitVec::ones(71);
    /// v.overwrite_prefix(&BitVec::zeros(64));
    /// assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![64, 65, 66, 67, 68, 69, 70]);
    /// ```
    pub fn overwrite_prefix(&mut self, src: &Self) {
        assert!(
            src.len <= self.len,
            "prefix of {} bits out of range for {} bits",
            src.len,
            self.len
        );
        let full_words = src.len / WORD_BITS;
        self.words[..full_words].copy_from_slice(&src.words[..full_words]);
        let rem = src.len % WORD_BITS;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            // `src`'s tail bits beyond its length are kept masked to zero,
            // so the masked merge splices exactly `rem` live bits.
            self.words[full_words] =
                (self.words[full_words] & !mask) | (src.words[full_words] & mask);
        }
    }

    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }

    fn assert_same_len(&self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "BitVec length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

/// Iterator over the indices of set bits, produced by [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    word_index: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_index * WORD_BITS + bit);
            }
            self.word_index += 1;
            if self.word_index >= self.vec.words.len() {
                return None;
            }
            self.current = self.vec.words[self.word_index];
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({self})")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl Default for BitVec {
    fn default() -> Self {
        Self::zeros(0)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bools)
    }
}

macro_rules! impl_bit_op {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $assign_trait<&BitVec> for BitVec {
            fn $assign_method(&mut self, rhs: &BitVec) {
                self.assert_same_len(rhs);
                for (a, b) in self.words.iter_mut().zip(&rhs.words) {
                    *a $op *b;
                }
            }
        }

        impl $trait<&BitVec> for &BitVec {
            type Output = BitVec;
            fn $method(self, rhs: &BitVec) -> BitVec {
                let mut out = self.clone();
                $assign_trait::$assign_method(&mut out, rhs);
                out
            }
        }
    };
}

impl_bit_op!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);
impl_bit_op!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
impl_bit_op!(BitOr, bitor, BitOrAssign, bitor_assign, |=);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_requested_length_and_no_ones() {
        let v = BitVec::zeros(71);
        assert_eq!(v.len(), 71);
        assert_eq!(v.count_ones(), 0);
        assert!(v.is_zero());
        assert!(!v.is_empty());
    }

    #[test]
    fn ones_sets_every_bit_and_masks_tail() {
        let v = BitVec::ones(71);
        assert_eq!(v.count_ones(), 71);
        // The packed representation must not leak bits beyond len.
        assert_eq!(v.as_words()[1] >> (71 - 64), 0);
    }

    #[test]
    fn set_get_flip_round_trip() {
        let mut v = BitVec::zeros(130);
        assert!(!v.get(129));
        v.set(129, true);
        assert!(v.get(129));
        assert!(!v.flip(129));
        assert!(!v.get(129));
        assert!(v.flip(0));
        assert!(v.get(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn from_indices_and_iter_ones_agree() {
        let idx = vec![0, 1, 63, 64, 65, 127];
        let v = BitVec::from_indices(128, idx.clone());
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), idx);
        assert_eq!(v.count_ones(), idx.len());
    }

    #[test]
    fn from_u64_round_trips() {
        let v = BitVec::from_u64(16, 0xA5A5);
        assert_eq!(v.to_u64(), 0xA5A5);
        let v = BitVec::from_u64(4, 0xFF);
        assert_eq!(v.to_u64(), 0xF);
    }

    #[test]
    fn xor_is_elementwise_addition() {
        let a = BitVec::from_indices(100, [1, 5, 99]);
        let b = BitVec::from_indices(100, [5, 7]);
        let c = &a ^ &b;
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 7, 99]);
    }

    #[test]
    fn and_or_not_behave_like_set_operations() {
        let a = BitVec::from_indices(10, [1, 2, 3]);
        let b = BitVec::from_indices(10, [2, 3, 4]);
        assert_eq!((&a & &b).iter_ones().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!((&a | &b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(a.not().count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        let _ = &BitVec::zeros(4) ^ &BitVec::zeros(5);
    }

    #[test]
    fn dot_product_parity() {
        let a = BitVec::from_indices(6, [0, 1, 2]);
        let b = BitVec::from_indices(6, [1, 2, 3]);
        assert!(!a.dot(&b));
        let c = BitVec::from_indices(6, [1, 3]);
        assert!(a.dot(&c));
    }

    #[test]
    fn slice_and_concat_are_inverse_like() {
        let v = BitVec::from_indices(20, [0, 7, 13, 19]);
        let left = v.slice(0, 10);
        let right = v.slice(10, 20);
        assert_eq!(left.concat(&right), v);
    }

    #[test]
    fn display_renders_bit_string() {
        let v = BitVec::from_indices(5, [1, 4]);
        assert_eq!(v.to_string(), "01001");
        assert_eq!(format!("{v:?}"), "BitVec(01001)");
    }

    #[test]
    fn first_one_finds_lowest_index() {
        assert_eq!(BitVec::from_indices(200, [150, 151]).first_one(), Some(150));
        assert_eq!(BitVec::zeros(200).first_one(), None);
    }

    #[test]
    fn from_iterator_collects_bools() {
        let v: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn parity_counts_ones_mod_two() {
        assert!(BitVec::from_indices(9, [0, 4, 8]).parity());
        assert!(!BitVec::from_indices(9, [0, 4]).parity());
    }

    #[test]
    fn in_place_assignments_match_their_allocating_counterparts() {
        let src = BitVec::from_indices(130, [0, 63, 64, 71, 129]);
        let mut reused = BitVec::from_indices(8, [3]);

        reused.copy_from(&src);
        assert_eq!(reused, src);

        for len in [0usize, 1, 63, 64, 65, 130] {
            reused.copy_prefix_from(&src, len);
            assert_eq!(reused, src.slice(0, len), "prefix of {len}");
        }

        for (len, value) in [(0usize, 0u64), (7, 0xFF), (64, u64::MAX), (13, 0x1234)] {
            reused.assign_u64(len, value);
            assert_eq!(reused, BitVec::from_u64(len, value), "assign_u64({len})");
        }

        reused.reset(71);
        assert_eq!(reused, BitVec::zeros(71));
        reused.reset(0);
        assert_eq!(reused, BitVec::zeros(0));
    }

    #[test]
    fn copy_from_does_not_leak_stale_high_words() {
        // Shrinking reuse: a long vector copied over by a short one must not
        // keep bits of the old tail words.
        let mut v = BitVec::ones(200);
        v.copy_from(&BitVec::from_indices(5, [1]));
        assert_eq!(v.len(), 5);
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![1]);
        assert_eq!(v.as_words().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn copy_prefix_longer_than_source_panics() {
        BitVec::default().copy_prefix_from(&BitVec::zeros(8), 9);
    }

    #[test]
    fn empty_vector_is_well_behaved() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.is_zero());
        assert_eq!(v.iter_ones().count(), 0);
        assert_eq!(v.to_u64(), 0);
    }
}
