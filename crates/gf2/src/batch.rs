//! Batched syndrome computation: one parity-check matrix applied to many
//! packed codewords in a single pass over `u64` words.
//!
//! Syndrome computation (`H · c` for a parity-check matrix `H`) is the
//! hottest operation in the whole reproduction: every simulated read of every
//! Monte-Carlo campaign decodes a stored codeword, and decoding starts with
//! the syndrome. [`SyndromeKernel`] precomputes a word-packed, row-major copy
//! of `H` once per code and then evaluates syndromes with nothing but word
//! loads, `AND`, `XOR`, and population counts — no per-call matrix traversal
//! and no per-row `BitVec` allocation. For whole batches,
//! [`SyndromeKernel::syndrome_words_into`] additionally reuses one packed
//! output buffer across all codewords (the `BitVec`-producing batch entry
//! points still allocate one output vector per codeword), and
//! [`SyndromeKernel::syndrome_words_bitsliced_into`] drops the per-word loop
//! entirely: 64-codeword blocks are transposed into bit-position lanes (see
//! [`bitslice`](crate::bitslice)) and every syndrome row is evaluated for a
//! whole block at once, emitting a per-block nonzero-syndrome mask alongside
//! the packed syndromes.
//!
//! All three code families in the workspace (SEC Hamming, SEC-DED extended
//! Hamming, and the DEC BCH code) implement the `harp_ecc` trait seam —
//! `LinearBlockCode::syndrome_kernel` — and route their `syndrome` path
//! through a kernel owned by the code; campaign drivers can additionally
//! call [`SyndromeKernel::syndromes`] / [`SyndromeKernel::syndromes_into`]
//! to batch reads. The `syndrome_kernel` and `bitsliced_kernel` bench
//! targets measure the per-read vs. batched vs. bit-sliced cost.
//!
//! # Example
//!
//! ```
//! use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};
//!
//! let h = Gf2Matrix::from_rows(&[
//!     BitVec::from_bools(&[true, true, false, true, false]),
//!     BitVec::from_bools(&[false, true, true, false, true]),
//! ]);
//! let kernel = SyndromeKernel::new(&h);
//! let word = BitVec::from_indices(5, [0, 3]);
//! assert_eq!(kernel.syndrome(&word), h.mul_vec(&word));
//! ```

use serde::{Deserialize, Serialize};

use crate::bitslice::{transpose64, BitsliceScratch, BLOCK_WORDS};
use crate::{BitVec, Gf2Matrix};

/// A parity-check matrix pre-packed for fast (and batched) syndrome
/// computation.
///
/// The kernel is a pure function of the matrix it was built from, so deriving
/// equality and serialization alongside the owning code type stays
/// consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyndromeKernel {
    /// Number of syndrome bits (rows of `H`).
    rows: usize,
    /// Codeword length in bits (columns of `H`).
    cols: usize,
    /// `u64` words per codeword.
    words_per_row: usize,
    /// Row-major packed copy of `H`: row `r` occupies
    /// `packed[r * words_per_row .. (r + 1) * words_per_row]`.
    packed: Vec<u64>,
    /// Column indices of the nonzero entries of each row, flattened; row `r`
    /// occupies `support[support_offsets[r] .. support_offsets[r + 1]]`.
    /// Derived from `packed`, so the derived equality/serialization stay
    /// consistent; drives the lane gathers of the bit-sliced entry points.
    support: Vec<u32>,
    /// Row boundaries into `support` (`rows + 1` entries).
    support_offsets: Vec<u32>,
}

impl SyndromeKernel {
    /// Packs a parity-check matrix for syndrome evaluation.
    pub fn new(h: &Gf2Matrix) -> Self {
        let words_per_row = h.cols().div_ceil(64).max(1);
        let mut packed = Vec::with_capacity(h.rows() * words_per_row);
        let mut support = Vec::new();
        let mut support_offsets = Vec::with_capacity(h.rows() + 1);
        support_offsets.push(0);
        for row in h.iter_rows() {
            let words = row.as_words();
            packed.extend_from_slice(words);
            packed.extend(std::iter::repeat_n(0, words_per_row - words.len()));
            support.extend(row.iter_ones().map(|col| col as u32));
            support_offsets.push(support.len() as u32);
        }
        Self {
            rows: h.rows(),
            cols: h.cols(),
            words_per_row,
            packed,
            support,
            support_offsets,
        }
    }

    /// Number of syndrome bits produced per codeword.
    pub fn syndrome_len(&self) -> usize {
        self.rows
    }

    /// Codeword length the kernel expects.
    pub fn codeword_len(&self) -> usize {
        self.cols
    }

    /// Computes the syndrome of one codeword as a packed `u64` (valid because
    /// every code in this workspace has at most 64 syndrome bits; bit `r` of
    /// the result is syndrome row `r`).
    ///
    /// # Panics
    ///
    /// Panics if the codeword length does not match or the kernel has more
    /// than 64 rows.
    #[inline]
    pub fn syndrome_word(&self, codeword: &BitVec) -> u64 {
        assert!(
            self.rows <= 64,
            "syndrome_word supports at most 64 syndrome bits, kernel has {}",
            self.rows
        );
        assert_eq!(
            codeword.len(),
            self.cols,
            "codeword length mismatch: expected {}, got {}",
            self.cols,
            codeword.len()
        );
        let data = codeword.as_words();
        let mut out = 0u64;
        for r in 0..self.rows {
            let row = &self.packed[r * self.words_per_row..(r + 1) * self.words_per_row];
            let mut acc = 0u64;
            for (h_word, c_word) in row.iter().zip(data) {
                acc ^= h_word & c_word;
            }
            out |= u64::from(acc.count_ones() & 1) << r;
        }
        out
    }

    /// Computes the syndrome of one codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len()` does not match the kernel.
    pub fn syndrome(&self, codeword: &BitVec) -> BitVec {
        if self.rows <= 64 {
            return BitVec::from_u64(self.rows, self.syndrome_word(codeword));
        }
        // Wide-syndrome fallback (unused by the built-in codes but kept for
        // generality): evaluate row by row.
        assert_eq!(
            codeword.len(),
            self.cols,
            "codeword length mismatch: expected {}, got {}",
            self.cols,
            codeword.len()
        );
        let data = codeword.as_words();
        let mut out = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            let row = &self.packed[r * self.words_per_row..(r + 1) * self.words_per_row];
            let mut acc = 0u64;
            for (h_word, c_word) in row.iter().zip(data) {
                acc ^= h_word & c_word;
            }
            if acc.count_ones() & 1 == 1 {
                out.set(r, true);
            }
        }
        out
    }

    /// Computes the syndromes of a batch of codewords, appending one `BitVec`
    /// per codeword to `out`.
    ///
    /// This is a convenience entry point, *not* the allocation-free hot path:
    /// it still allocates one output `BitVec` per codeword (`out` is only
    /// reserved once up front). Hot callers should use the packed
    /// [`SyndromeKernel::syndrome_words_into`] or the bit-sliced
    /// [`SyndromeKernel::syndrome_words_bitsliced_into`] instead.
    ///
    /// # Panics
    ///
    /// Panics if any codeword length does not match the kernel.
    pub fn syndromes_into(&self, codewords: &[BitVec], out: &mut Vec<BitVec>) {
        out.reserve(codewords.len());
        for codeword in codewords {
            out.push(self.syndrome(codeword));
        }
    }

    /// Computes the syndromes of a batch of codewords, allocating the output
    /// vector (see [`SyndromeKernel::syndromes_into`] for the allocation
    /// caveat).
    ///
    /// # Example
    ///
    /// ```
    /// use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};
    ///
    /// let h = Gf2Matrix::identity(4);
    /// let kernel = SyndromeKernel::new(&h);
    /// let words = vec![BitVec::from_indices(4, [1]), BitVec::zeros(4)];
    /// let syndromes = kernel.syndromes(&words);
    /// assert_eq!(syndromes[0], words[0]);
    /// assert!(syndromes[1].is_zero());
    /// ```
    #[must_use]
    pub fn syndromes(&self, codewords: &[BitVec]) -> Vec<BitVec> {
        let mut out = Vec::new();
        self.syndromes_into(codewords, &mut out);
        out
    }

    /// Computes the packed-`u64` syndromes of a batch of codewords, reusing
    /// `out` (cleared first). This is the allocation-free hot path used by
    /// Monte-Carlo campaigns: `MemoryChip::read_burst` feeds it a whole scrub
    /// pass worth of stored codewords in one call.
    ///
    /// Accepts any iterator of codeword references, so callers can stream
    /// codewords straight out of their own scratch structures without
    /// collecting them into a contiguous slice first.
    ///
    /// # Panics
    ///
    /// Panics as [`SyndromeKernel::syndrome_word`] does.
    pub fn syndrome_words_into<'a, I>(&self, codewords: I, out: &mut Vec<u64>)
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        out.clear();
        // `extend` pre-reserves from the iterator's size hint, so a fresh
        // output vector takes one allocation instead of push-doubling.
        out.extend(
            codewords
                .into_iter()
                .map(|codeword| self.syndrome_word(codeword)),
        );
    }

    /// Computes the packed-`u64` syndromes of a batch of codewords with the
    /// bit-sliced block evaluator, reusing `out` and `masks` (both cleared
    /// first). Byte-for-byte equivalent to
    /// [`SyndromeKernel::syndrome_words_into`] on the same codewords — the
    /// per-word path stays the reference implementation — but evaluated 64
    /// codewords at a time: each block is transposed into bit-position lanes
    /// (see [`bitslice`](crate::bitslice)) and every syndrome row becomes one
    /// XOR chain over the lanes in its support, with no per-word loop.
    ///
    /// `masks` receives one `u64` per 64-codeword block: bit `i` is set iff
    /// codeword `64 * block + i` has a **nonzero** syndrome. Clean words'
    /// packed syndromes are written as `0` without ever being extracted from
    /// the lanes, so a caller that honors the mask (the burst read path does)
    /// never touches per-word syndrome state for clean words at all.
    ///
    /// Blocks whose gathered 64-bit chunks are all zero skip their transpose
    /// and row evaluation outright, which makes the pass effectively free for
    /// sparse inputs — e.g. raw error patterns, whose syndromes equal the
    /// stored codewords' syndromes by linearity.
    ///
    /// # Panics
    ///
    /// Panics as [`SyndromeKernel::syndrome_word`] does (any codeword length
    /// mismatch, or more than 64 syndrome rows).
    pub fn syndrome_words_bitsliced_into<'a, I>(
        &self,
        codewords: I,
        out: &mut Vec<u64>,
        masks: &mut Vec<u64>,
        scratch: &mut BitsliceScratch,
    ) where
        I: IntoIterator<Item = &'a BitVec>,
    {
        assert!(
            self.rows <= 64,
            "syndrome_word supports at most 64 syndrome bits, kernel has {}",
            self.rows
        );
        out.clear();
        masks.clear();
        self.for_each_block(codewords, scratch, |kernel, block, scratch| {
            let mask = if kernel.slice_block(block, scratch) {
                kernel.accumulate_rows(scratch)
            } else {
                0
            };
            // Clean words keep a packed syndrome of zero; only flagged words
            // pay the per-row bit extraction from the lane accumulators.
            let base = out.len();
            out.resize(base + block.len(), 0);
            let mut dirty = mask;
            while dirty != 0 {
                let i = dirty.trailing_zeros() as usize;
                let mut word = 0u64;
                for (r, acc) in scratch.row_acc.iter().enumerate() {
                    word |= ((acc >> i) & 1) << r;
                }
                out[base + i] = word;
                dirty &= dirty - 1;
            }
            masks.push(mask);
        });
    }

    /// Computes only the per-block nonzero-syndrome masks of a batch of
    /// codewords (bit `i` of `masks[block]` set iff codeword
    /// `64 * block + i` has a nonzero syndrome), reusing `masks` (cleared
    /// first).
    ///
    /// Unlike [`SyndromeKernel::syndrome_words_bitsliced_into`], this entry
    /// point has no 64-row limit: it is the bit-sliced twin of the
    /// wide-syndrome [`SyndromeKernel::syndrome`] fallback, since the mask
    /// only needs the OR of the row accumulators, never a packed syndrome
    /// word.
    ///
    /// # Panics
    ///
    /// Panics if any codeword length does not match the kernel.
    pub fn nonzero_masks_bitsliced_into<'a, I>(
        &self,
        codewords: I,
        masks: &mut Vec<u64>,
        scratch: &mut BitsliceScratch,
    ) where
        I: IntoIterator<Item = &'a BitVec>,
    {
        masks.clear();
        self.for_each_block(codewords, scratch, |kernel, block, scratch| {
            let mask = if kernel.slice_block(block, scratch) {
                kernel.accumulate_rows(scratch)
            } else {
                0
            };
            masks.push(mask);
        });
    }

    /// Streams `codewords` through fixed 64-word blocks (the final block may
    /// be ragged), invoking `process` once per block. Blocks are collected
    /// into a fixed stack array of filled `Option` slots, so the streaming
    /// never allocates whatever the iterator's size hint says; the scratch
    /// is threaded through `process` (rather than captured) so callers can
    /// also borrow their output vectors in the closure.
    fn for_each_block<'a, I, F>(&self, codewords: I, scratch: &mut BitsliceScratch, mut process: F)
    where
        I: IntoIterator<Item = &'a BitVec>,
        F: FnMut(&Self, &[Option<&'a BitVec>], &mut BitsliceScratch),
    {
        let mut block: [Option<&'a BitVec>; BLOCK_WORDS] = [None; BLOCK_WORDS];
        let mut count = 0usize;
        for codeword in codewords {
            assert_eq!(
                codeword.len(),
                self.cols,
                "codeword length mismatch: expected {}, got {}",
                self.cols,
                codeword.len()
            );
            block[count] = Some(codeword);
            count += 1;
            if count == BLOCK_WORDS {
                process(self, &block, scratch);
                count = 0;
            }
        }
        if count > 0 {
            process(self, &block[..count], scratch);
        }
    }

    /// Gathers and transposes one block of codewords into `scratch.lanes`,
    /// returning `false` when every gathered chunk was zero — the sparse
    /// fast path: the lanes are left untouched (stale) and every syndrome in
    /// the block is known to be zero without any row evaluation.
    fn slice_block(&self, block: &[Option<&BitVec>], scratch: &mut BitsliceScratch) -> bool {
        let lane_words = self.words_per_row * 64;
        if scratch.lanes.len() < lane_words {
            scratch.lanes.resize(lane_words, 0);
        }
        if scratch.zero_chunks.len() < self.words_per_row {
            scratch.zero_chunks.resize(self.words_per_row, false);
        }
        let mut all_zero = true;
        for chunk in 0..self.words_per_row {
            let mut gather = [0u64; 64];
            let mut any = 0u64;
            for (lane_bit, slot) in block.iter().enumerate() {
                let word = slot
                    .expect("block slot filled by for_each_block")
                    .as_words()
                    .get(chunk)
                    .copied()
                    .unwrap_or(0);
                gather[lane_bit] = word;
                any |= word;
            }
            if any == 0 {
                scratch.zero_chunks[chunk] = true;
                continue;
            }
            scratch.zero_chunks[chunk] = false;
            all_zero = false;
            transpose64(&mut gather);
            scratch.lanes[chunk * 64..(chunk + 1) * 64].copy_from_slice(&gather);
        }
        if all_zero {
            return false;
        }
        // Chunks skipped above may hold stale lanes from an earlier block;
        // zero them now that this block does need a row evaluation.
        for chunk in 0..self.words_per_row {
            if scratch.zero_chunks[chunk] {
                scratch.lanes[chunk * 64..(chunk + 1) * 64].fill(0);
            }
        }
        true
    }

    /// XORs the lanes of each row's support into `scratch.row_acc` and
    /// returns the OR of all accumulators: bit `i` of the result is set iff
    /// word `i` of the current block has a nonzero syndrome.
    fn accumulate_rows(&self, scratch: &mut BitsliceScratch) -> u64 {
        scratch.row_acc.clear();
        scratch.row_acc.reserve(self.rows);
        let mut mask = 0u64;
        for r in 0..self.rows {
            let start = self.support_offsets[r] as usize;
            let end = self.support_offsets[r + 1] as usize;
            let mut acc = 0u64;
            for &col in &self.support[start..end] {
                acc ^= scratch.lanes[col as usize];
            }
            scratch.row_acc.push(acc);
            mask |= acc;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_h(rows: usize, cols: usize, salt: u64) -> Gf2Matrix {
        // Deterministic pseudo-random dense matrix.
        Gf2Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64) << 17)
                .wrapping_add(salt);
            (x ^ (x >> 29)).count_ones().is_multiple_of(2)
        })
    }

    #[test]
    fn kernel_matches_mul_vec_across_shapes() {
        for (rows, cols, salt) in [(3, 7, 1), (7, 71, 2), (8, 136, 3), (16, 144, 4), (1, 1, 5)] {
            let h = dense_h(rows, cols, salt);
            let kernel = SyndromeKernel::new(&h);
            assert_eq!(kernel.syndrome_len(), rows);
            assert_eq!(kernel.codeword_len(), cols);
            for k in 0..20 {
                let word = BitVec::from_indices(
                    cols,
                    (0..cols).filter(|&b| (b as u64 * 31 + k).is_multiple_of(3)),
                );
                assert_eq!(
                    kernel.syndrome(&word),
                    h.mul_vec(&word),
                    "rows={rows} cols={cols} k={k}"
                );
            }
        }
    }

    #[test]
    fn syndrome_word_packs_rows_low_bit_first() {
        let h = dense_h(7, 71, 9);
        let kernel = SyndromeKernel::new(&h);
        let word = BitVec::from_indices(71, [0, 3, 64, 70]);
        let packed = kernel.syndrome_word(&word);
        let reference = h.mul_vec(&word);
        for r in 0..7 {
            assert_eq!((packed >> r) & 1 == 1, reference.get(r), "row {r}");
        }
    }

    #[test]
    fn batched_syndromes_match_individual_calls() {
        let h = dense_h(8, 136, 11);
        let kernel = SyndromeKernel::new(&h);
        let words: Vec<BitVec> = (0..64)
            .map(|k| BitVec::from_indices(136, (0..136).filter(move |&b| (b * 7 + k) % 5 == 0)))
            .collect();
        let batched = kernel.syndromes(&words);
        assert_eq!(batched.len(), words.len());
        for (word, syndrome) in words.iter().zip(&batched) {
            assert_eq!(&kernel.syndrome(word), syndrome);
        }
        let mut packed = Vec::new();
        kernel.syndrome_words_into(&words, &mut packed);
        for (syndrome, &word) in batched.iter().zip(&packed) {
            assert_eq!(syndrome.to_u64(), word);
        }
    }

    #[test]
    fn zero_codeword_has_zero_syndrome() {
        let h = dense_h(7, 71, 13);
        let kernel = SyndromeKernel::new(&h);
        assert!(kernel.syndrome(&BitVec::zeros(71)).is_zero());
        assert_eq!(kernel.syndrome_word(&BitVec::zeros(71)), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_codeword_length_panics() {
        let kernel = SyndromeKernel::new(&dense_h(3, 7, 17));
        kernel.syndrome(&BitVec::zeros(8));
    }

    #[test]
    fn bitsliced_syndromes_match_per_word_path() {
        let mut scratch = BitsliceScratch::new();
        for (rows, cols, salt) in [(3, 7, 1), (7, 71, 2), (8, 136, 3), (16, 144, 4), (1, 1, 5)] {
            let h = dense_h(rows, cols, salt);
            let kernel = SyndromeKernel::new(&h);
            for count in [1usize, 5, 63, 64, 65, 130] {
                let words: Vec<BitVec> = (0..count)
                    .map(|k| {
                        BitVec::from_indices(
                            cols,
                            (0..cols).filter(move |&b| (b * 11 + k) % 7 == 0),
                        )
                    })
                    .collect();
                let mut reference = Vec::new();
                kernel.syndrome_words_into(&words, &mut reference);
                let mut bitsliced = Vec::new();
                let mut masks = Vec::new();
                kernel.syndrome_words_bitsliced_into(
                    &words,
                    &mut bitsliced,
                    &mut masks,
                    &mut scratch,
                );
                assert_eq!(
                    bitsliced, reference,
                    "rows={rows} cols={cols} count={count}"
                );
                assert_eq!(masks.len(), count.div_ceil(64));
                for (i, &syndrome) in reference.iter().enumerate() {
                    let bit = (masks[i / 64] >> (i % 64)) & 1;
                    assert_eq!(bit == 1, syndrome != 0, "mask bit {i}");
                }
                // Mask bits beyond the ragged tail stay clear.
                let tail = count % 64;
                if tail != 0 {
                    assert_eq!(masks.last().unwrap() >> tail, 0);
                }
            }
        }
    }

    #[test]
    fn bitsliced_pass_handles_sparse_and_zero_blocks() {
        let h = dense_h(7, 71, 21);
        let kernel = SyndromeKernel::new(&h);
        let mut scratch = BitsliceScratch::new();
        // A dense block first, so a later all-zero block must not reuse its
        // stale lanes.
        let dense: Vec<BitVec> = (0..64)
            .map(|k| BitVec::from_indices(71, (0..71).filter(move |&b| (b + k) % 3 == 0)))
            .collect();
        let zeros: Vec<BitVec> = (0..64).map(|_| BitVec::zeros(71)).collect();
        let mut one_error = zeros.clone();
        one_error[17].set(70, true);
        for words in [&dense, &zeros, &one_error] {
            let mut reference = Vec::new();
            kernel.syndrome_words_into(words.as_slice(), &mut reference);
            let (mut out, mut masks) = (Vec::new(), Vec::new());
            kernel.syndrome_words_bitsliced_into(
                words.as_slice(),
                &mut out,
                &mut masks,
                &mut scratch,
            );
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn wide_kernel_masks_match_wide_syndromes() {
        // More than 64 rows: packed syndrome words are unavailable, but the
        // nonzero masks still are (the wide-syndrome fallback's twin).
        let h = dense_h(70, 100, 31);
        let kernel = SyndromeKernel::new(&h);
        let words: Vec<BitVec> = (0..70)
            .map(|k| BitVec::from_indices(100, (0..100).filter(move |&b| (b * 3 + k) % 9 == 0)))
            .collect();
        let mut masks = Vec::new();
        kernel.nonzero_masks_bitsliced_into(&words, &mut masks, &mut BitsliceScratch::new());
        assert_eq!(masks.len(), 2);
        for (i, word) in words.iter().enumerate() {
            let bit = (masks[i / 64] >> (i % 64)) & 1;
            assert_eq!(bit == 1, !kernel.syndrome(word).is_zero(), "word {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 syndrome bits")]
    fn bitsliced_syndrome_words_reject_wide_kernels() {
        let kernel = SyndromeKernel::new(&dense_h(65, 80, 1));
        kernel.syndrome_words_bitsliced_into(
            &[BitVec::zeros(80)],
            &mut Vec::new(),
            &mut Vec::new(),
            &mut BitsliceScratch::new(),
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bitsliced_pass_rejects_mismatched_codeword_length() {
        let kernel = SyndromeKernel::new(&dense_h(7, 71, 1));
        kernel.syndrome_words_bitsliced_into(
            &[BitVec::zeros(72)],
            &mut Vec::new(),
            &mut Vec::new(),
            &mut BitsliceScratch::new(),
        );
    }

    #[test]
    fn kernel_equality_follows_matrix_equality() {
        let a = SyndromeKernel::new(&dense_h(4, 32, 1));
        let b = SyndromeKernel::new(&dense_h(4, 32, 1));
        let c = SyndromeKernel::new(&dense_h(4, 32, 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
