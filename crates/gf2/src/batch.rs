//! Batched syndrome computation: one parity-check matrix applied to many
//! packed codewords in a single pass over `u64` words.
//!
//! Syndrome computation (`H · c` for a parity-check matrix `H`) is the
//! hottest operation in the whole reproduction: every simulated read of every
//! Monte-Carlo campaign decodes a stored codeword, and decoding starts with
//! the syndrome. [`SyndromeKernel`] precomputes a word-packed, row-major copy
//! of `H` once per code and then evaluates syndromes with nothing but word
//! loads, `AND`, `XOR`, and population counts — no per-call matrix traversal
//! and no per-row `BitVec` allocation. For whole batches,
//! [`SyndromeKernel::syndrome_words_into`] additionally reuses one packed
//! output buffer across all codewords (the `BitVec`-producing batch entry
//! points still allocate one output vector per codeword).
//!
//! Both code implementations in the workspace ([`HammingCode`] and the BCH
//! code) own a kernel and route their `syndrome` path through it; campaign
//! drivers can additionally call [`SyndromeKernel::syndromes`] /
//! [`SyndromeKernel::syndromes_into`] to amortize output allocation across a
//! whole batch of reads. The `syndrome_kernel` bench target measures the
//! per-read vs. batched cost.
//!
//! [`HammingCode`]: https://docs.rs/harp_ecc
//!
//! # Example
//!
//! ```
//! use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};
//!
//! let h = Gf2Matrix::from_rows(&[
//!     BitVec::from_bools(&[true, true, false, true, false]),
//!     BitVec::from_bools(&[false, true, true, false, true]),
//! ]);
//! let kernel = SyndromeKernel::new(&h);
//! let word = BitVec::from_indices(5, [0, 3]);
//! assert_eq!(kernel.syndrome(&word), h.mul_vec(&word));
//! ```

use serde::{Deserialize, Serialize};

use crate::{BitVec, Gf2Matrix};

/// A parity-check matrix pre-packed for fast (and batched) syndrome
/// computation.
///
/// The kernel is a pure function of the matrix it was built from, so deriving
/// equality and serialization alongside the owning code type stays
/// consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyndromeKernel {
    /// Number of syndrome bits (rows of `H`).
    rows: usize,
    /// Codeword length in bits (columns of `H`).
    cols: usize,
    /// `u64` words per codeword.
    words_per_row: usize,
    /// Row-major packed copy of `H`: row `r` occupies
    /// `packed[r * words_per_row .. (r + 1) * words_per_row]`.
    packed: Vec<u64>,
}

impl SyndromeKernel {
    /// Packs a parity-check matrix for syndrome evaluation.
    pub fn new(h: &Gf2Matrix) -> Self {
        let words_per_row = h.cols().div_ceil(64).max(1);
        let mut packed = Vec::with_capacity(h.rows() * words_per_row);
        for row in h.iter_rows() {
            let words = row.as_words();
            packed.extend_from_slice(words);
            packed.extend(std::iter::repeat_n(0, words_per_row - words.len()));
        }
        Self {
            rows: h.rows(),
            cols: h.cols(),
            words_per_row,
            packed,
        }
    }

    /// Number of syndrome bits produced per codeword.
    pub fn syndrome_len(&self) -> usize {
        self.rows
    }

    /// Codeword length the kernel expects.
    pub fn codeword_len(&self) -> usize {
        self.cols
    }

    /// Computes the syndrome of one codeword as a packed `u64` (valid because
    /// every code in this workspace has at most 64 syndrome bits; bit `r` of
    /// the result is syndrome row `r`).
    ///
    /// # Panics
    ///
    /// Panics if the codeword length does not match or the kernel has more
    /// than 64 rows.
    #[inline]
    pub fn syndrome_word(&self, codeword: &BitVec) -> u64 {
        assert!(
            self.rows <= 64,
            "syndrome_word supports at most 64 syndrome bits, kernel has {}",
            self.rows
        );
        assert_eq!(
            codeword.len(),
            self.cols,
            "codeword length mismatch: expected {}, got {}",
            self.cols,
            codeword.len()
        );
        let data = codeword.as_words();
        let mut out = 0u64;
        for r in 0..self.rows {
            let row = &self.packed[r * self.words_per_row..(r + 1) * self.words_per_row];
            let mut acc = 0u64;
            for (h_word, c_word) in row.iter().zip(data) {
                acc ^= h_word & c_word;
            }
            out |= u64::from(acc.count_ones() & 1) << r;
        }
        out
    }

    /// Computes the syndrome of one codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len()` does not match the kernel.
    pub fn syndrome(&self, codeword: &BitVec) -> BitVec {
        if self.rows <= 64 {
            return BitVec::from_u64(self.rows, self.syndrome_word(codeword));
        }
        // Wide-syndrome fallback (unused by the built-in codes but kept for
        // generality): evaluate row by row.
        assert_eq!(
            codeword.len(),
            self.cols,
            "codeword length mismatch: expected {}, got {}",
            self.cols,
            codeword.len()
        );
        let data = codeword.as_words();
        let mut out = BitVec::zeros(self.rows);
        for r in 0..self.rows {
            let row = &self.packed[r * self.words_per_row..(r + 1) * self.words_per_row];
            let mut acc = 0u64;
            for (h_word, c_word) in row.iter().zip(data) {
                acc ^= h_word & c_word;
            }
            if acc.count_ones() & 1 == 1 {
                out.set(r, true);
            }
        }
        out
    }

    /// Computes the syndromes of a batch of codewords in one pass, appending
    /// one `BitVec` per codeword to `out`.
    ///
    /// # Panics
    ///
    /// Panics if any codeword length does not match the kernel.
    pub fn syndromes_into(&self, codewords: &[BitVec], out: &mut Vec<BitVec>) {
        out.reserve(codewords.len());
        for codeword in codewords {
            out.push(self.syndrome(codeword));
        }
    }

    /// Computes the syndromes of a batch of codewords in one pass.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};
    ///
    /// let h = Gf2Matrix::identity(4);
    /// let kernel = SyndromeKernel::new(&h);
    /// let words = vec![BitVec::from_indices(4, [1]), BitVec::zeros(4)];
    /// let syndromes = kernel.syndromes(&words);
    /// assert_eq!(syndromes[0], words[0]);
    /// assert!(syndromes[1].is_zero());
    /// ```
    pub fn syndromes(&self, codewords: &[BitVec]) -> Vec<BitVec> {
        let mut out = Vec::new();
        self.syndromes_into(codewords, &mut out);
        out
    }

    /// Computes the packed-`u64` syndromes of a batch of codewords, reusing
    /// `out` (cleared first). This is the allocation-free hot path used by
    /// Monte-Carlo campaigns: `MemoryChip::read_burst` feeds it a whole scrub
    /// pass worth of stored codewords in one call.
    ///
    /// Accepts any iterator of codeword references, so callers can stream
    /// codewords straight out of their own scratch structures without
    /// collecting them into a contiguous slice first.
    ///
    /// # Panics
    ///
    /// Panics as [`SyndromeKernel::syndrome_word`] does.
    pub fn syndrome_words_into<'a, I>(&self, codewords: I, out: &mut Vec<u64>)
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        out.clear();
        // `extend` pre-reserves from the iterator's size hint, so a fresh
        // output vector takes one allocation instead of push-doubling.
        out.extend(
            codewords
                .into_iter()
                .map(|codeword| self.syndrome_word(codeword)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_h(rows: usize, cols: usize, salt: u64) -> Gf2Matrix {
        // Deterministic pseudo-random dense matrix.
        Gf2Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u64 + 1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64) << 17)
                .wrapping_add(salt);
            (x ^ (x >> 29)).count_ones().is_multiple_of(2)
        })
    }

    #[test]
    fn kernel_matches_mul_vec_across_shapes() {
        for (rows, cols, salt) in [(3, 7, 1), (7, 71, 2), (8, 136, 3), (16, 144, 4), (1, 1, 5)] {
            let h = dense_h(rows, cols, salt);
            let kernel = SyndromeKernel::new(&h);
            assert_eq!(kernel.syndrome_len(), rows);
            assert_eq!(kernel.codeword_len(), cols);
            for k in 0..20 {
                let word = BitVec::from_indices(
                    cols,
                    (0..cols).filter(|&b| (b as u64 * 31 + k).is_multiple_of(3)),
                );
                assert_eq!(
                    kernel.syndrome(&word),
                    h.mul_vec(&word),
                    "rows={rows} cols={cols} k={k}"
                );
            }
        }
    }

    #[test]
    fn syndrome_word_packs_rows_low_bit_first() {
        let h = dense_h(7, 71, 9);
        let kernel = SyndromeKernel::new(&h);
        let word = BitVec::from_indices(71, [0, 3, 64, 70]);
        let packed = kernel.syndrome_word(&word);
        let reference = h.mul_vec(&word);
        for r in 0..7 {
            assert_eq!((packed >> r) & 1 == 1, reference.get(r), "row {r}");
        }
    }

    #[test]
    fn batched_syndromes_match_individual_calls() {
        let h = dense_h(8, 136, 11);
        let kernel = SyndromeKernel::new(&h);
        let words: Vec<BitVec> = (0..64)
            .map(|k| BitVec::from_indices(136, (0..136).filter(move |&b| (b * 7 + k) % 5 == 0)))
            .collect();
        let batched = kernel.syndromes(&words);
        assert_eq!(batched.len(), words.len());
        for (word, syndrome) in words.iter().zip(&batched) {
            assert_eq!(&kernel.syndrome(word), syndrome);
        }
        let mut packed = Vec::new();
        kernel.syndrome_words_into(&words, &mut packed);
        for (syndrome, &word) in batched.iter().zip(&packed) {
            assert_eq!(syndrome.to_u64(), word);
        }
    }

    #[test]
    fn zero_codeword_has_zero_syndrome() {
        let h = dense_h(7, 71, 13);
        let kernel = SyndromeKernel::new(&h);
        assert!(kernel.syndrome(&BitVec::zeros(71)).is_zero());
        assert_eq!(kernel.syndrome_word(&BitVec::zeros(71)), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_codeword_length_panics() {
        let kernel = SyndromeKernel::new(&dense_h(3, 7, 17));
        kernel.syndrome(&BitVec::zeros(8));
    }

    #[test]
    fn kernel_equality_follows_matrix_equality() {
        let a = SyndromeKernel::new(&dense_h(4, 32, 1));
        let b = SyndromeKernel::new(&dense_h(4, 32, 1));
        let c = SyndromeKernel::new(&dense_h(4, 32, 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
