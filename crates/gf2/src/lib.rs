//! GF(2) linear algebra substrate for the HARP reproduction.
//!
//! On-die ECC codes (and the secondary ECC inside the memory controller) are
//! linear block codes over the binary field GF(2). Everything the HARP paper
//! does with them — encoding, syndrome decoding, reasoning about which
//! pre-correction error combinations are possible under data-dependent error
//! models — reduces to arithmetic on binary vectors and matrices.
//!
//! This crate provides four building blocks:
//!
//! * [`BitVec`] — a densely packed, fixed-length vector over GF(2);
//! * [`Gf2Matrix`] — a dense matrix over GF(2) with multiplication,
//!   transposition, stacking, and rank computation;
//! * [`solve`] — Gaussian elimination based solvers: reduced row echelon form,
//!   linear-system feasibility (used to decide whether a set of codeword bits
//!   can all be *charged* under some data pattern), and null-space bases;
//! * [`SyndromeKernel`] — a word-packed parity-check matrix evaluating
//!   syndromes (one or a whole batch of codewords per call) on the hot
//!   Monte-Carlo read path, including a bit-sliced block mode (see
//!   [`bitslice`]) that evaluates 64 codewords at a time and reports which
//!   of them have nonzero syndromes as a single mask word.
//!
//! # Example
//!
//! ```
//! use harp_gf2::{BitVec, Gf2Matrix};
//!
//! // H * c for a tiny parity-check matrix.
//! let h = Gf2Matrix::from_rows(&[
//!     BitVec::from_bools(&[true, true, false, true, false]),
//!     BitVec::from_bools(&[false, true, true, false, true]),
//! ]);
//! let c = BitVec::from_indices(5, [0, 3]);
//! let syndrome = h.mul_vec(&c);
//! assert!(syndrome.is_zero());
//! ```

pub mod batch;
pub mod bitslice;
pub mod bitvec;
pub mod matrix;
pub mod solve;

pub use batch::SyndromeKernel;
pub use bitslice::BitsliceScratch;
pub use bitvec::BitVec;
pub use matrix::Gf2Matrix;
pub use solve::{solve, LinearSolution, RowEchelon};
