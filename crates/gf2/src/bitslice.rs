//! Bit-sliced codeword blocks: transpose up to 64 codewords so that one
//! `u64` lane carries 64 words' worth of a single codeword bit.
//!
//! The word-packed [`SyndromeKernel`] evaluates one codeword per call — fast,
//! but still a per-word loop inside a burst. Bit-slicing turns the loop
//! inside out: a block of up to 64 codewords is transposed into *lanes*
//! (`lane[j]` bit `i` = codeword `i`'s bit `j`), after which one syndrome row
//! is a plain XOR of the lanes in its support, evaluated for **all 64 words
//! at once** with whole-block word ops and no per-word control flow. The
//! OR of all row accumulators is the block's *nonzero-syndrome mask* (bit `i`
//! set iff word `i` has a nonzero syndrome), which is what lets the burst
//! read path short-circuit clean words without ever extracting their packed
//! syndromes.
//!
//! The module exposes the transpose primitive and the slicing round-trip
//! ([`transpose64`], [`slice_words`], [`unslice_word`]) for direct use and
//! property testing; the batched kernel entry points live on
//! [`SyndromeKernel`] itself and reuse a [`BitsliceScratch`] so steady-state
//! passes stay allocation-free.
//!
//! [`SyndromeKernel`]: crate::SyndromeKernel

use crate::BitVec;

/// Number of codewords per bit-sliced block (one per bit of a `u64` lane).
pub const BLOCK_WORDS: usize = 64;

/// Transposes a 64×64 bit matrix in place.
///
/// `block[i]` is row `i` with its columns packed LSB-first (bit `j` of
/// `block[i]` is entry `(i, j)`), matching the [`BitVec`] word convention.
/// After the call, bit `j` of `block[i]` is the *old* entry `(j, i)`.
///
/// This is the recursive block-swap transpose (swap the off-diagonal
/// half-blocks, recurse into halves), expressed iteratively with shrinking
/// strides; all six rounds are branch-free word ops.
pub fn transpose64(block: &mut [u64; 64]) {
    let mut j = 32;
    // Mask of the "low half" columns at the current stride (bits whose
    // `j`-valued index bit is 0).
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            // Swap the low-half columns of row `k + j` with the high-half
            // columns of row `k` (LSB-first variant of the classic trick).
            let t = (block[k + j] ^ (block[k] >> j)) & m;
            block[k + j] ^= t;
            block[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Transposes up to [`BLOCK_WORDS`] equal-length codewords into bit-position
/// lanes, returning the number of codewords consumed.
///
/// `lanes` is resized to the codeword length: `lanes[j]` holds codeword
/// `i`'s bit `j` at bit `i`, with lane bits at indices `>= count` zero. An
/// empty iterator clears `lanes` and returns 0.
///
/// # Panics
///
/// Panics if the iterator yields more than [`BLOCK_WORDS`] codewords or the
/// codeword lengths disagree.
pub fn slice_words<'a, I>(codewords: I, lanes: &mut Vec<u64>) -> usize
where
    I: IntoIterator<Item = &'a BitVec>,
{
    let mut block: [Option<&BitVec>; BLOCK_WORDS] = [None; BLOCK_WORDS];
    let mut count = 0usize;
    let mut len = 0usize;
    for codeword in codewords {
        assert!(
            count < BLOCK_WORDS,
            "a bit-sliced block holds at most {BLOCK_WORDS} codewords"
        );
        if count == 0 {
            len = codeword.len();
        }
        assert_eq!(
            codeword.len(),
            len,
            "codeword length mismatch: expected {}, got {}",
            len,
            codeword.len()
        );
        block[count] = Some(codeword);
        count += 1;
    }
    lanes.clear();
    lanes.resize(len, 0);
    for (chunk, lane_chunk) in lanes.chunks_mut(64).enumerate() {
        let mut gather = [0u64; 64];
        for (i, slot) in block[..count].iter().enumerate() {
            gather[i] = slot
                .expect("slot filled above")
                .as_words()
                .get(chunk)
                .copied()
                .unwrap_or(0);
        }
        transpose64(&mut gather);
        lane_chunk.copy_from_slice(&gather[..lane_chunk.len()]);
    }
    count
}

/// Reconstructs codeword `index` of a sliced block (the inverse of
/// [`slice_words`] for one word).
///
/// # Panics
///
/// Panics if `index >= BLOCK_WORDS`.
pub fn unslice_word(lanes: &[u64], index: usize) -> BitVec {
    assert!(
        index < BLOCK_WORDS,
        "a bit-sliced block holds at most {BLOCK_WORDS} codewords"
    );
    BitVec::from_indices(
        lanes.len(),
        lanes
            .iter()
            .enumerate()
            .filter(|(_, lane)| (*lane >> index) & 1 == 1)
            .map(|(j, _)| j),
    )
}

/// Reusable buffers for the bit-sliced kernel entry points on
/// [`SyndromeKernel`]. Buffers grow to the widest kernel they have served
/// and are then reused verbatim, so steady-state burst passes perform zero
/// heap allocations.
///
/// [`SyndromeKernel`]: crate::SyndromeKernel
#[derive(Debug, Default, Clone)]
pub struct BitsliceScratch {
    /// Lane storage for one block: chunk `c` of the codewords occupies
    /// `lanes[c * 64 .. (c + 1) * 64]`.
    pub(crate) lanes: Vec<u64>,
    /// One accumulator per syndrome row: bit `i` is row `r`'s parity for
    /// word `i` of the current block.
    pub(crate) row_acc: Vec<u64>,
    /// Per-chunk flags: `true` when every gathered word of the chunk was
    /// zero, so the chunk skipped its transpose.
    pub(crate) zero_chunks: Vec<bool>,
}

impl BitsliceScratch {
    /// Creates an empty scratch; buffers are sized lazily by the first pass.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(len: usize, salt: u64) -> BitVec {
        BitVec::from_indices(
            len,
            (0..len).filter(|&b| {
                let x = (b as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                (x ^ (x >> 31)).count_ones() & 1 == 1
            }),
        )
    }

    #[test]
    fn transpose64_is_an_involution_and_transposes() {
        let mut block = [0u64; 64];
        for (i, row) in block.iter_mut().enumerate() {
            *row = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        let original = block;
        transpose64(&mut block);
        for (i, lane) in block.iter().enumerate() {
            for (j, row) in original.iter().enumerate() {
                assert_eq!((lane >> j) & 1, (row >> i) & 1, "entry ({i}, {j})");
            }
        }
        transpose64(&mut block);
        assert_eq!(block, original);
    }

    #[test]
    fn slice_round_trips_full_and_ragged_blocks() {
        let mut lanes = Vec::new();
        for (count, len) in [(64, 71), (64, 136), (5, 71), (1, 1), (63, 200)] {
            let words: Vec<BitVec> = (0..count).map(|i| word(len, i as u64)).collect();
            assert_eq!(slice_words(&words, &mut lanes), count);
            assert_eq!(lanes.len(), len);
            for (i, original) in words.iter().enumerate() {
                assert_eq!(&unslice_word(&lanes, i), original, "word {i} len {len}");
            }
            // Lane bits beyond the block's word count stay zero.
            for (j, lane) in lanes.iter().enumerate() {
                if count < 64 {
                    assert_eq!(lane >> count, 0, "lane {j} tail");
                }
            }
        }
    }

    #[test]
    fn slice_of_empty_iterator_clears_lanes() {
        let mut lanes = vec![7u64; 3];
        assert_eq!(slice_words(std::iter::empty(), &mut lanes), 0);
        assert!(lanes.is_empty());
    }

    #[test]
    #[should_panic(expected = "at most 64 codewords")]
    fn slice_rejects_oversized_blocks() {
        let words: Vec<BitVec> = (0..65).map(|i| word(8, i)).collect();
        slice_words(&words, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn slice_rejects_mismatched_lengths() {
        let words = [BitVec::zeros(8), BitVec::zeros(9)];
        slice_words(&words, &mut Vec::new());
    }
}
