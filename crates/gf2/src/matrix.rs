//! Dense matrices over GF(2).
//!
//! A [`Gf2Matrix`] stores its rows as [`BitVec`]s. Matrix dimensions in this
//! project are small (parity-check matrices are at most 9 × 137), so a simple
//! dense row-major representation is both fast enough and easy to audit.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::BitVec;

/// A dense matrix over GF(2) with `rows()` rows and `cols()` columns.
///
/// # Example
///
/// ```
/// use harp_gf2::{BitVec, Gf2Matrix};
///
/// let id = Gf2Matrix::identity(3);
/// let v = BitVec::from_indices(3, [0, 2]);
/// assert_eq!(id.mul_vec(&v), v);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gf2Matrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl Gf2Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::Gf2Matrix;
    /// let id = Gf2Matrix::identity(4);
    /// assert_eq!(id.rank(), 4);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[BitVec]) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
        }
        Self {
            rows: rows.len(),
            cols,
            data: rows.to_vec(),
        }
    }

    /// Builds a `rows × cols` matrix where entry `(i, j)` is `f(i, j)`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::Gf2Matrix;
    /// let upper = Gf2Matrix::from_fn(3, 3, |i, j| j >= i);
    /// assert_eq!(upper.rank(), 3);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Builds a matrix from its columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns do not all have the same length.
    pub fn from_cols(cols: &[BitVec]) -> Self {
        let rows = cols.first().map_or(0, BitVec::len);
        for c in cols {
            assert_eq!(c.len(), rows, "all columns must have the same length");
        }
        Self::from_fn(rows, cols.len(), |i, j| cols[j].get(i))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.data[row].get(col)
    }

    /// Sets entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.data[row].set(col, value);
    }

    /// Returns a reference to row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    pub fn row(&self, row: usize) -> &BitVec {
        &self.data[row]
    }

    /// Returns column `col` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols()`.
    pub fn col(&self, col: usize) -> BitVec {
        assert!(col < self.cols, "col {col} out of range {}", self.cols);
        BitVec::from_indices(self.rows, (0..self.rows).filter(|&i| self.data[i].get(col)))
    }

    /// Iterates over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.data.iter()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix × vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols()`.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::{BitVec, Gf2Matrix};
    /// let m = Gf2Matrix::from_rows(&[
    ///     BitVec::from_bools(&[true, true, false]),
    ///     BitVec::from_bools(&[false, true, true]),
    /// ]);
    /// let v = BitVec::from_indices(3, [0, 1]);
    /// assert_eq!(m.mul_vec(&v).iter_ones().collect::<Vec<_>>(), vec![1]);
    /// ```
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        BitVec::from_indices(self.rows, (0..self.rows).filter(|&i| self.data[i].dot(v)))
    }

    /// Matrix × matrix product.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "matrix product dimension mismatch");
        let rhs_t = rhs.transpose();
        Self::from_fn(self.rows, rhs.cols, |i, j| self.data[i].dot(rhs_t.row(j)))
    }

    /// Horizontally stacks `self` and `rhs` (`[self | rhs]`).
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, rhs: &Self) -> Self {
        assert_eq!(self.rows, rhs.rows, "hstack row count mismatch");
        let rows: Vec<BitVec> = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a.concat(b))
            .collect();
        Self::from_rows(&rows)
    }

    /// Vertically stacks `self` on top of `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.cols, "vstack column count mismatch");
        let mut rows = self.data.clone();
        rows.extend(rhs.data.iter().cloned());
        Self::from_rows(&rows)
    }

    /// Returns a copy of columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    pub fn col_slice(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.cols, "invalid column range");
        let rows: Vec<BitVec> = self.data.iter().map(|r| r.slice(start, end)).collect();
        Self::from_rows(&rows)
    }

    /// Returns `true` if every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(BitVec::is_zero)
    }

    /// Computes the rank via Gaussian elimination.
    ///
    /// # Example
    ///
    /// ```
    /// # use harp_gf2::{BitVec, Gf2Matrix};
    /// let m = Gf2Matrix::from_rows(&[
    ///     BitVec::from_bools(&[true, false, true]),
    ///     BitVec::from_bools(&[true, false, true]),
    /// ]);
    /// assert_eq!(m.rank(), 1);
    /// ```
    pub fn rank(&self) -> usize {
        crate::solve::row_echelon(self).rank()
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of range");
        self.data.swap(a, b);
    }

    /// XORs row `src` into row `dst` in place (`dst ^= src`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range or `src == dst`.
    pub fn xor_row_into(&mut self, src: usize, dst: usize) {
        assert!(src < self.rows && dst < self.rows, "row index out of range");
        assert_ne!(src, dst, "cannot xor a row into itself");
        let (src_row, dst_row) = if src < dst {
            let (a, b) = self.data.split_at_mut(dst);
            (&a[src], &mut b[0])
        } else {
            let (a, b) = self.data.split_at_mut(src);
            (&b[0], &mut a[dst])
        };
        *dst_row ^= src_row;
    }
}

impl fmt::Debug for Gf2Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Gf2Matrix({}x{}) [", self.rows, self.cols)?;
        for r in &self.data {
            writeln!(f, "  {r}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Gf2Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.data.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_h() -> Gf2Matrix {
        // The (7,4) Hamming parity-check matrix from the paper's Equation 1.
        Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, true, true, false, true, false, false]),
            BitVec::from_bools(&[true, true, false, true, false, true, false]),
            BitVec::from_bools(&[true, false, true, true, false, false, true]),
        ])
    }

    fn example_g_t() -> Gf2Matrix {
        // G^T = [I_4 | P] matching the same code.
        Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, false, false, false, true, true, true]),
            BitVec::from_bools(&[false, true, false, false, true, true, false]),
            BitVec::from_bools(&[false, false, true, false, true, false, true]),
            BitVec::from_bools(&[false, false, false, true, false, true, true]),
        ])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let h = example_h();
        let id = Gf2Matrix::identity(7);
        assert_eq!(h.mul(&id), h);
        let id3 = Gf2Matrix::identity(3);
        assert_eq!(id3.mul(&h), h);
    }

    #[test]
    fn paper_equation_1_satisfies_g_h_t_zero() {
        // G · H^T = 0 in GF(2) — the defining property quoted in §2.5.1.
        let g = example_g_t();
        let h = example_h();
        assert!(g.mul(&h.transpose()).is_zero());
    }

    #[test]
    fn transpose_involution() {
        let h = example_h();
        assert_eq!(h.transpose().transpose(), h);
        assert_eq!(h.transpose().rows(), 7);
        assert_eq!(h.transpose().cols(), 3);
    }

    #[test]
    fn mul_vec_matches_column_xor() {
        let h = example_h();
        // H * e_i = column i.
        for i in 0..7 {
            let e = BitVec::from_indices(7, [i]);
            assert_eq!(h.mul_vec(&e), h.col(i), "column {i}");
        }
        // Linearity: H*(e_0 ^ e_3) = col0 ^ col3.
        let e = BitVec::from_indices(7, [0, 3]);
        assert_eq!(h.mul_vec(&e), &h.col(0) ^ &h.col(3));
    }

    #[test]
    fn rank_of_hamming_parity_check_is_full() {
        assert_eq!(example_h().rank(), 3);
        assert_eq!(example_g_t().rank(), 4);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        let m = Gf2Matrix::from_rows(&[
            BitVec::from_bools(&[true, false, true, true]),
            BitVec::from_bools(&[false, true, true, false]),
            BitVec::from_bools(&[true, true, false, true]),
        ]);
        // Row 2 = row 0 ^ row 1.
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn hstack_and_col_slice_round_trip() {
        let a = Gf2Matrix::identity(3);
        let b = Gf2Matrix::from_fn(3, 2, |i, j| (i + j) % 2 == 0);
        let c = a.hstack(&b);
        assert_eq!(c.cols(), 5);
        assert_eq!(c.col_slice(0, 3), a);
        assert_eq!(c.col_slice(3, 5), b);
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = Gf2Matrix::identity(2);
        let b = Gf2Matrix::zeros(1, 2);
        let c = a.vstack(&b);
        assert_eq!(c.rows(), 3);
        assert!(c.row(2).is_zero());
    }

    #[test]
    fn from_cols_matches_from_fn() {
        let cols = vec![
            BitVec::from_bools(&[true, false, true]),
            BitVec::from_bools(&[false, true, true]),
        ];
        let m = Gf2Matrix::from_cols(&cols);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.col(0), cols[0]);
        assert_eq!(m.col(1), cols[1]);
    }

    #[test]
    fn xor_row_into_adds_rows() {
        let mut m = example_h();
        let expected = &m.row(0).clone() ^ &m.row(2).clone();
        m.xor_row_into(0, 2);
        assert_eq!(m.row(2), &expected);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_wrong_length_panics() {
        example_h().mul_vec(&BitVec::zeros(6));
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_ragged_panics() {
        Gf2Matrix::from_rows(&[BitVec::zeros(3), BitVec::zeros(4)]);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let h = example_h();
        assert!(!h.to_string().is_empty());
        assert!(format!("{h:?}").contains("Gf2Matrix(3x7)"));
    }
}
