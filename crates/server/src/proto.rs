//! The `harpd` request/response frames.
//!
//! Every frame is a JSON object with a `"type"` discriminant. Requests flow
//! client → daemon; the daemon answers each request with exactly one frame,
//! except `watch`, which streams `snapshot` frames followed by one terminal
//! `result` or `job` frame. The full protocol and job lifecycle are
//! documented in ROADMAP.md; frames embed the checkpoint-layer codecs
//! ([`harp_sim::checkpoint::encode_config`] /
//! [`harp_sim::checkpoint::encode_sweep`]), so a result frame carries the
//! same bytes a single-process sweep would persist.

use harp_profiler::ProfilerKind;
use harp_sim::checkpoint::{decode_config, encode_config};
use harp_sim::minijson::Json;
use harp_sim::EvaluationConfig;

/// Version of the wire protocol. Bump on any incompatible frame change;
/// the daemon rejects mismatched `hello` frames instead of misreading them.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep job; answered with a `submitted` frame carrying the
    /// job id once the job is durably on disk.
    Submit {
        /// The sweep configuration to evaluate.
        config: EvaluationConfig,
        /// Profiler lineup, in evaluation order.
        profilers: Vec<ProfilerKind>,
    },
    /// One `job` status frame for the given job.
    Status {
        /// Job id from a `submitted` frame.
        job: u64,
    },
    /// A `jobs` frame listing every job the daemon knows.
    List,
    /// Stream `snapshot` frames for the job from round 0, then the terminal
    /// `result` (completed) or `job` (cancelled/failed) frame.
    Watch {
        /// Job id from a `submitted` frame.
        job: u64,
    },
    /// Request cancellation; answered with a `job` frame.
    Cancel {
        /// Job id from a `submitted` frame.
        job: u64,
    },
    /// Checkpoint running jobs and stop the daemon; answered with an `ok`
    /// frame before the daemon winds down.
    Shutdown,
}

/// Encodes a request frame.
pub fn encode_request(request: &Request) -> Json {
    let typed = |name: &str, mut rest: Vec<(String, Json)>| {
        let mut entries = vec![("type".to_owned(), Json::Str(name.to_owned()))];
        entries.append(&mut rest);
        Json::Object(entries)
    };
    match request {
        Request::Submit { config, profilers } => typed(
            "submit",
            vec![
                ("config".to_owned(), encode_config(config)),
                ("profilers".to_owned(), encode_profilers(profilers)),
            ],
        ),
        Request::Status { job } => typed("status", vec![("job".to_owned(), Json::from_u64(*job))]),
        Request::List => typed("list", vec![]),
        Request::Watch { job } => typed("watch", vec![("job".to_owned(), Json::from_u64(*job))]),
        Request::Cancel { job } => typed("cancel", vec![("job".to_owned(), Json::from_u64(*job))]),
        Request::Shutdown => typed("shutdown", vec![]),
    }
}

/// Decodes a request frame from untrusted bytes.
///
/// # Errors
///
/// Returns a user-facing description of the first problem: unknown type,
/// missing field, or an unusable embedded configuration.
pub fn decode_request(frame: &Json) -> Result<Request, String> {
    let kind = frame
        .get("type")
        .and_then(Json::as_str)
        .ok_or("request has no 'type'")?;
    let job = || {
        frame
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("'{kind}' request has no numeric 'job'"))
    };
    match kind {
        "submit" => Ok(Request::Submit {
            config: decode_config(
                frame
                    .get("config")
                    .ok_or("submit request has no 'config'")?,
            )?,
            profilers: decode_profilers(
                frame
                    .get("profilers")
                    .ok_or("submit request has no 'profilers'")?,
            )?,
        }),
        "status" => Ok(Request::Status { job: job()? }),
        "list" => Ok(Request::List),
        "watch" => Ok(Request::Watch { job: job()? }),
        "cancel" => Ok(Request::Cancel { job: job()? }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type '{other}'")),
    }
}

/// Encodes a profiler lineup as an array of kind names.
pub fn encode_profilers(profilers: &[ProfilerKind]) -> Json {
    Json::Array(
        profilers
            .iter()
            .map(|kind| Json::Str(kind.name().to_owned()))
            .collect(),
    )
}

/// Decodes a profiler lineup written by [`encode_profilers`].
///
/// # Errors
///
/// Returns a message naming the first unknown profiler, or when the lineup
/// is empty or not an array.
pub fn decode_profilers(json: &Json) -> Result<Vec<ProfilerKind>, String> {
    let profilers: Vec<ProfilerKind> = json
        .as_array()
        .ok_or("profilers is not an array")?
        .iter()
        .map(|v| {
            let name = v.as_str().ok_or("profiler name is not a string")?;
            ProfilerKind::from_name(name).ok_or_else(|| format!("unknown profiler '{name}'"))
        })
        .collect::<Result<_, String>>()?;
    if profilers.is_empty() {
        return Err("profiler lineup is empty".to_owned());
    }
    Ok(profilers)
}

/// Builds an `error` response frame.
pub fn error_frame(message: &str) -> Json {
    Json::Object(vec![
        ("type".to_owned(), Json::Str("error".to_owned())),
        ("message".to_owned(), Json::Str(message.to_owned())),
    ])
}

/// Builds an `ok` acknowledgement frame.
pub fn ok_frame() -> Json {
    Json::Object(vec![("type".to_owned(), Json::Str("ok".to_owned()))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let requests = [
            Request::Submit {
                config: EvaluationConfig::smoke(),
                profilers: vec![ProfilerKind::HarpU, ProfilerKind::Naive],
            },
            Request::Status { job: 7 },
            Request::List,
            Request::Watch { job: 0 },
            Request::Cancel { job: 3 },
            Request::Shutdown,
        ];
        for request in requests {
            let rendered = encode_request(&request).render();
            let reparsed = Json::parse(&rendered).unwrap();
            assert_eq!(decode_request(&reparsed).unwrap(), request, "{rendered}");
        }
    }

    #[test]
    fn malformed_requests_are_described_not_panicked_on() {
        for (text, needle) in [
            (r#"{"job":1}"#, "no 'type'"),
            (r#"{"type":"frobnicate"}"#, "unknown request type"),
            (r#"{"type":"watch"}"#, "no numeric 'job'"),
            (r#"{"type":"submit"}"#, "no 'config'"),
            (r#"{"type":"cancel","job":"x"}"#, "no numeric 'job'"),
        ] {
            let err = decode_request(&Json::parse(text).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn submit_rejects_unusable_configs_and_lineups() {
        let mut bad_config = EvaluationConfig::smoke();
        bad_config.rounds = 0;
        let frame = encode_request(&Request::Submit {
            config: bad_config,
            profilers: vec![ProfilerKind::HarpU],
        });
        assert!(decode_request(&frame).unwrap_err().contains("rounds"));

        let frame = Json::parse(
            &encode_request(&Request::Submit {
                config: EvaluationConfig::smoke(),
                profilers: vec![ProfilerKind::HarpU],
            })
            .render()
            .replace("[\"HARP-U\"]", "[]"),
        )
        .unwrap();
        assert!(decode_request(&frame).unwrap_err().contains("empty"));
    }
}
