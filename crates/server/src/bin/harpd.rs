//! `harpd serve` — boot the profiling daemon.

use std::net::TcpListener;
use std::process::ExitCode;

use harp_server::daemon::{Daemon, DaemonConfig, DEFAULT_ADDR};

const USAGE: &str = "usage: harpd serve [--addr HOST:PORT] [--state-dir DIR] \
[--workers N] [--checkpoint-interval N]

Serves profiling sweep jobs over the harp wire protocol (see ROADMAP.md).
Jobs are checkpointed under the state directory and resume automatically
after a crash or restart. Defaults: --addr 127.0.0.1:8471, --state-dir
harpd_state, --workers 2, --checkpoint-interval 8.";

fn parse_args(args: &[String]) -> Result<(String, DaemonConfig), String> {
    if args.first().map(String::as_str) != Some("serve") {
        return Err(USAGE.to_owned());
    }
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut config = DaemonConfig::new("harpd_state");
    let mut rest = args[1..].iter();
    while let Some(flag) = rest.next() {
        let mut value = || {
            rest.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => addr = value()?.clone(),
            "--state-dir" => config.state_dir = value()?.into(),
            "--workers" => {
                config.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--checkpoint-interval" => {
                config.checkpoint_interval = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    Ok((addr, config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, config) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let state_dir = config.state_dir.clone();
    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(err) => {
            eprintln!("harpd: cannot start: {err}");
            return ExitCode::FAILURE;
        }
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(listener) => listener,
        Err(err) => {
            eprintln!("harpd: cannot bind {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        // The "listening on" line is the readiness signal CI waits for.
        Ok(local) => println!(
            "harpd listening on {local} (state dir {})",
            state_dir.display()
        ),
        Err(_) => println!(
            "harpd listening on {addr} (state dir {})",
            state_dir.display()
        ),
    }
    if let Err(err) = daemon.serve(listener) {
        eprintln!("harpd: serve failed: {err}");
        return ExitCode::FAILURE;
    }
    println!("harpd: shut down cleanly");
    ExitCode::SUCCESS
}
