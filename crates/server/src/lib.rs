//! `harpd` — the persistent profiling daemon.
//!
//! The paper's profiling campaigns are batch jobs, but the reproduction's
//! north star is a production service: a memory controller (or its test
//! harness) submits profiling work continuously and consumes coverage
//! results as they stream in. This crate turns the checkpointed sweep layer
//! of [`harp_sim::checkpoint`] into exactly that service:
//!
//! * [`daemon::Daemon`] owns a pool of worker threads, each advancing one
//!   [`harp_sim::checkpoint::ResumableSweep`] at a time, round by round.
//!   Every job lives in its own schema-versioned checkpoint archive — the
//!   same format `harp sweep --checkpoint-dir` writes — so a `kill -9`'d
//!   daemon resumes its jobs from disk on restart, and a completed job's
//!   result is byte-identical to the single-process `harp sweep` run
//!   (`tests/server_protocol.rs` locks both properties down).
//! * [`transport`] is a hand-rolled length-prefixed JSON wire protocol over
//!   `std::net::TcpStream` (the container is vendored-only;
//!   [`harp_sim::minijson`] is the codec — its depth budget and
//!   duplicate-key rejection are what make untrusted daemon-socket bytes
//!   safe to parse). [`transport::duplex`] is the deterministic in-process
//!   twin, so the protocol suite runs without real sockets — the same
//!   scalar-reference safety pattern the hot-path kernels use.
//! * [`proto`] defines the request/response frames: submit a sweep
//!   configuration, stream round-by-round coverage snapshots, query, cancel,
//!   and shut down. See ROADMAP.md for the wire-protocol and job-lifecycle
//!   documentation.
//! * [`client`] is the blocking client used by the `harp submit` / `harp
//!   watch` / `harp jobs` / `harp shutdown` subcommands.

pub mod client;
pub mod daemon;
pub mod proto;
pub mod transport;
