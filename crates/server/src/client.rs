//! Blocking client for the `harpd` protocol.
//!
//! One [`Client`] wraps one transport; every method sends a single request
//! and decodes the daemon's answer, turning `error` frames into `Err`
//! strings. [`Client::watch`] streams snapshot frames through a callback
//! until the job reaches a terminal state.

use std::net::TcpStream;
use std::time::Duration;

use harp_profiler::ProfilerKind;
use harp_sim::checkpoint::decode_sweep;
use harp_sim::experiments::sweep::CoverageSweep;
use harp_sim::minijson::Json;
use harp_sim::EvaluationConfig;

use crate::proto::{encode_request, Request};
use crate::transport::{FrameTransport, TcpTransport};

/// One job's status as reported by a `job` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// Lifecycle state: `pending`, `running`, `done`, `cancelled`, `failed`.
    pub state: String,
    /// Completed rounds.
    pub round: usize,
    /// Configured rounds.
    pub rounds: usize,
    /// Failure description, for `failed` jobs.
    pub message: Option<String>,
}

/// One round's coverage snapshot from a `snapshot` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The job id.
    pub job: u64,
    /// Completed rounds at this snapshot.
    pub round: usize,
    /// Configured rounds.
    pub rounds: usize,
    /// Per-profiler mean direct coverage, in lineup order.
    pub coverage: Vec<(String, f64)>,
}

/// How a watched job ended.
#[derive(Debug, Clone)]
pub enum WatchOutcome {
    /// The job completed; this is its full sweep result.
    Completed(CoverageSweep),
    /// The job ended without a result (cancelled or failed).
    Ended(JobStatus),
}

/// A blocking `harpd` client over any frame transport.
pub struct Client<T: FrameTransport> {
    transport: T,
}

impl Client<TcpTransport> {
    /// Connects to a daemon over TCP.
    ///
    /// # Errors
    ///
    /// Returns a description of any resolution or connection failure.
    pub fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        // Watch streams are round-paced; a generous timeout distinguishes a
        // hung daemon from a slow round without stalling forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .map_err(|e| e.to_string())?;
        let transport = TcpTransport::new(stream).map_err(|e| e.to_string())?;
        Ok(Self::new(transport))
    }
}

impl<T: FrameTransport> Client<T> {
    /// Wraps an already-connected transport (the in-process twin in tests).
    pub fn new(transport: T) -> Self {
        Self { transport }
    }

    fn recv_frame(&mut self) -> Result<Json, String> {
        match self.transport.recv() {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err("daemon closed the connection".to_owned()),
            Err(err) => Err(err.to_string()),
        }
    }

    /// Sends one request and returns the daemon's next frame, with `error`
    /// frames already turned into `Err`.
    fn request(&mut self, request: &Request) -> Result<Json, String> {
        self.transport
            .send(&encode_request(request))
            .map_err(|e| e.to_string())?;
        let frame = self.recv_frame()?;
        check_error(&frame)?;
        Ok(frame)
    }

    /// Submits a sweep job; returns its id once the daemon has it durably on
    /// disk.
    ///
    /// # Errors
    ///
    /// Returns transport failures and daemon-side rejections (unusable
    /// configuration, empty profiler lineup).
    pub fn submit(
        &mut self,
        config: &EvaluationConfig,
        profilers: &[ProfilerKind],
    ) -> Result<u64, String> {
        let frame = self.request(&Request::Submit {
            config: config.clone(),
            profilers: profilers.to_vec(),
        })?;
        expect_type(&frame, "submitted")?;
        frame
            .get("job")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("submitted frame has no job id: {}", frame.render()))
    }

    /// Fetches one job's status.
    ///
    /// # Errors
    ///
    /// Returns transport failures and `no job <id>` rejections.
    pub fn status(&mut self, job: u64) -> Result<JobStatus, String> {
        decode_job_status(&self.request(&Request::Status { job })?)
    }

    /// Lists every job the daemon knows, oldest first.
    ///
    /// # Errors
    ///
    /// Returns transport failures.
    pub fn jobs(&mut self) -> Result<Vec<JobStatus>, String> {
        let frame = self.request(&Request::List)?;
        expect_type(&frame, "jobs")?;
        frame
            .get("jobs")
            .and_then(Json::as_array)
            .ok_or("jobs frame has no job list")?
            .iter()
            .map(decode_job_status)
            .collect()
    }

    /// Requests cancellation and returns the job's status at that moment (a
    /// running job transitions once its worker observes the request).
    ///
    /// # Errors
    ///
    /// Returns transport failures and `no job <id>` rejections.
    pub fn cancel(&mut self, job: u64) -> Result<JobStatus, String> {
        decode_job_status(&self.request(&Request::Cancel { job })?)
    }

    /// Streams the job's coverage snapshots into `on_snapshot` until the job
    /// ends, then returns how it ended.
    ///
    /// # Errors
    ///
    /// Returns transport failures, daemon-side rejections, and undecodable
    /// result frames.
    pub fn watch<F: FnMut(&Snapshot)>(
        &mut self,
        job: u64,
        mut on_snapshot: F,
    ) -> Result<WatchOutcome, String> {
        let first = self.request(&Request::Watch { job })?;
        let mut frame = first;
        loop {
            match frame.get("type").and_then(Json::as_str) {
                Some("snapshot") => on_snapshot(&decode_snapshot(&frame)?),
                Some("result") => {
                    let sweep = frame.get("sweep").ok_or("result frame has no sweep")?;
                    return Ok(WatchOutcome::Completed(decode_sweep(sweep)?));
                }
                Some("job") => return Ok(WatchOutcome::Ended(decode_job_status(&frame)?)),
                _ => return Err(format!("unexpected watch frame: {}", frame.render())),
            }
            frame = self.recv_frame()?;
            check_error(&frame)?;
        }
    }

    /// Asks the daemon to checkpoint running jobs and stop.
    ///
    /// # Errors
    ///
    /// Returns transport failures.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let frame = self.request(&Request::Shutdown)?;
        expect_type(&frame, "ok")
    }
}

fn check_error(frame: &Json) -> Result<(), String> {
    if frame.get("type").and_then(Json::as_str) == Some("error") {
        return Err(frame
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("daemon reported an unspecified error")
            .to_owned());
    }
    Ok(())
}

fn expect_type(frame: &Json, expected: &str) -> Result<(), String> {
    match frame.get("type").and_then(Json::as_str) {
        Some(kind) if kind == expected => Ok(()),
        _ => Err(format!(
            "expected a '{expected}' frame, got: {}",
            frame.render()
        )),
    }
}

fn decode_job_status(frame: &Json) -> Result<JobStatus, String> {
    expect_type(frame, "job")?;
    let field = |name: &str| {
        frame
            .get(name)
            .and_then(Json::as_usize)
            .ok_or_else(|| format!("job frame has no numeric '{name}'"))
    };
    Ok(JobStatus {
        job: frame
            .get("job")
            .and_then(Json::as_u64)
            .ok_or("job frame has no numeric 'job'")?,
        state: frame
            .get("state")
            .and_then(Json::as_str)
            .ok_or("job frame has no 'state'")?
            .to_owned(),
        round: field("round")?,
        rounds: field("rounds")?,
        message: frame
            .get("message")
            .and_then(Json::as_str)
            .map(str::to_owned),
    })
}

fn decode_snapshot(frame: &Json) -> Result<Snapshot, String> {
    let coverage = frame
        .get("coverage")
        .and_then(Json::as_array)
        .ok_or("snapshot frame has no coverage array")?
        .iter()
        .map(|entry| {
            let profiler = entry
                .get("profiler")
                .and_then(Json::as_str)
                .ok_or("coverage entry has no 'profiler'")?;
            let mean = entry
                .get("mean_direct_coverage")
                .and_then(Json::as_f64)
                .ok_or("coverage entry has no 'mean_direct_coverage'")?;
            Ok((profiler.to_owned(), mean))
        })
        .collect::<Result<_, String>>()?;
    Ok(Snapshot {
        job: frame
            .get("job")
            .and_then(Json::as_u64)
            .ok_or("snapshot frame has no 'job'")?,
        round: frame
            .get("round")
            .and_then(Json::as_usize)
            .ok_or("snapshot frame has no 'round'")?,
        rounds: frame
            .get("rounds")
            .and_then(Json::as_usize)
            .ok_or("snapshot frame has no 'rounds'")?,
        coverage,
    })
}
