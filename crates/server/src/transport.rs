//! Length-prefixed JSON framing over a byte stream, plus a deterministic
//! in-process twin.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON. The length guard ([`MAX_FRAME_BYTES`]) bounds allocation on
//! untrusted input; the JSON layer below it contributes the parser depth
//! budget and duplicate-key rejection. [`duplex`] builds a connected pair of
//! in-memory transports that move the same rendered bytes through the same
//! parse path as the TCP transport — protocol tests exercise everything but
//! the socket itself.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;

use harp_sim::minijson::Json;

/// Upper bound on a single frame's payload. A quick-scale result frame is
/// well under a megabyte; anything approaching this is a corrupt or hostile
/// length prefix, and rejecting it keeps a bad client from forcing a
/// gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A bidirectional, blocking frame channel.
///
/// `recv` returns `Ok(None)` on clean end-of-stream (the peer closed the
/// connection between frames); a stream that dies mid-frame is an error.
pub trait FrameTransport {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying stream.
    fn send(&mut self, frame: &Json) -> io::Result<()>;

    /// Receives the next frame, or `None` when the peer has closed cleanly.
    ///
    /// # Errors
    ///
    /// Returns an error for I/O failures, oversized frames, or payloads that
    /// are not valid JSON.
    fn recv(&mut self) -> io::Result<Option<Json>>;
}

fn frame_bytes(frame: &Json) -> io::Result<Vec<u8>> {
    let payload = frame.render().into_bytes();
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the protocol limit",
                payload.len()
            ),
        ));
    }
    let mut bytes = Vec::with_capacity(4 + payload.len());
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(&payload);
    Ok(bytes)
}

fn parse_payload(payload: &[u8]) -> io::Result<Json> {
    let text = std::str::from_utf8(payload).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not UTF-8: {e}"),
        )
    })?;
    Json::parse(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not JSON: {e}"),
        )
    })
}

/// Reads one length-prefixed frame from a byte stream. `Ok(None)` only when
/// the stream ends exactly on a frame boundary.
fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the protocol limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    parse_payload(&payload).map(Some)
}

/// Framing over a TCP connection.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    /// Wraps a connected stream (the write half is a `try_clone`).
    ///
    /// # Errors
    ///
    /// Returns any error from cloning the stream handle.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

impl FrameTransport for TcpTransport {
    fn send(&mut self, frame: &Json) -> io::Result<()> {
        self.writer.write_all(&frame_bytes(frame)?)?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Option<Json>> {
        read_frame(&mut self.reader)
    }
}

/// One end of an in-process duplex channel. Frames are rendered to bytes on
/// send and re-parsed on receive, so the twin exercises the exact encode →
/// bytes → decode path of the socket transport, minus only the socket.
pub struct PairTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

/// Builds a connected transport pair: frames sent on one end arrive on the
/// other, in order. Dropping either end reads as a clean close to its peer.
pub fn duplex() -> (PairTransport, PairTransport) {
    let (tx_a, rx_b) = mpsc::channel();
    let (tx_b, rx_a) = mpsc::channel();
    (
        PairTransport { tx: tx_a, rx: rx_a },
        PairTransport { tx: tx_b, rx: rx_b },
    )
}

impl FrameTransport for PairTransport {
    fn send(&mut self, frame: &Json) -> io::Result<()> {
        let bytes = frame_bytes(frame)?;
        self.tx
            .send(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer transport dropped"))
    }

    fn recv(&mut self) -> io::Result<Option<Json>> {
        match self.rx.recv() {
            Ok(bytes) => {
                // The 4-byte prefix is carried for fidelity with the wire
                // format; validate it agrees with the payload.
                if bytes.len() < 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "frame shorter than its header",
                    ));
                }
                let len = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
                if len != bytes.len() - 4 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame length prefix disagrees with payload",
                    ));
                }
                parse_payload(&bytes[4..]).map(Some)
            }
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn duplex_round_trips_frames_in_order() {
        let (mut a, mut b) = duplex();
        a.send(&frame(r#"{"type":"ping","n":1}"#)).unwrap();
        a.send(&frame(r#"{"type":"ping","n":2}"#)).unwrap();
        assert_eq!(
            b.recv().unwrap().unwrap().render(),
            r#"{"type":"ping","n":1}"#
        );
        assert_eq!(
            b.recv().unwrap().unwrap().render(),
            r#"{"type":"ping","n":2}"#
        );
        b.send(&frame("[1,2,3]")).unwrap();
        assert_eq!(a.recv().unwrap().unwrap().render(), "[1,2,3]");
    }

    #[test]
    fn dropping_one_end_reads_as_clean_close() {
        let (a, mut b) = duplex();
        drop(a);
        assert!(b.recv().unwrap().is_none());
        assert!(b.send(&Json::Null).is_err());
    }

    #[test]
    fn tcp_transport_round_trips_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut transport = TcpTransport::new(stream).unwrap();
            while let Some(request) = transport.recv().unwrap() {
                transport.send(&request).unwrap();
            }
        });
        let mut client = TcpTransport::new(std::net::TcpStream::connect(addr).unwrap()).unwrap();
        for text in [r#"{"echo":true}"#, "[0.5,1]", "\"harp\""] {
            client.send(&frame(text)).unwrap();
            assert_eq!(client.recv().unwrap().unwrap().render(), text);
        }
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn oversized_length_prefixes_are_rejected() {
        let mut bytes: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF, 0, 0];
        let err = read_frame(&mut bytes).unwrap_err();
        assert!(err.to_string().contains("protocol limit"), "{err}");
    }

    #[test]
    fn torn_headers_and_non_json_payloads_are_errors() {
        let mut torn: &[u8] = &[0, 0];
        assert!(read_frame(&mut torn).is_err());
        let mut bad_json: &[u8] = &[0, 0, 0, 2, b'{', b'x'];
        assert!(read_frame(&mut bad_json).is_err());
        let mut clean: &[u8] = &[];
        assert!(read_frame(&mut clean).unwrap().is_none());
    }
}
