//! The `harpd` daemon: a worker pool serving concurrent, durable,
//! resumable sweep jobs.
//!
//! Every job is backed by its own checkpoint archive directory
//! (`<state_dir>/JOB_<id>/`) in exactly the format `harp sweep
//! --checkpoint-dir` writes, plus a small `JOB.json` state record and, once
//! complete, a `RESULT.json` result frame. All three go through
//! [`write_json_atomically`]'s durable write sequence, and a job is
//! acknowledged to the submitter only after its archive and record are on
//! disk — so a `kill -9` at any point leaves a state directory from which
//! the next daemon start resumes every unfinished job.
//!
//! Job lifecycle: `pending` → `running` → `done` | `cancelled` | `failed`,
//! with `running` falling back to `pending` on daemon shutdown (after a
//! checkpoint) and on crash-restart. The full lifecycle and wire protocol
//! are documented in ROADMAP.md.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use harp_ecc::HammingCode;
use harp_profiler::ProfilerKind;
use harp_sim::checkpoint::{read_manifest, write_json_atomically, ResumableSweep};
use harp_sim::minijson::{Json, NonFiniteFloat};
use harp_sim::EvaluationConfig;

use crate::proto::{self, Request};
use crate::transport::{FrameTransport, TcpTransport};

/// Name of the per-job state record inside the job's directory.
pub const JOB_FILE: &str = "JOB.json";

/// Name of the per-job result frame written on completion.
pub const RESULT_FILE: &str = "RESULT.json";

/// Default client/daemon rendezvous address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:8471";

/// How the daemon runs: where job state lives and how eagerly it
/// checkpoints.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Directory holding one `JOB_<id>/` checkpoint archive per job.
    pub state_dir: PathBuf,
    /// Number of sweep worker threads.
    pub workers: usize,
    /// Rounds between checkpoint archive writes while a job runs.
    pub checkpoint_interval: usize,
}

impl DaemonConfig {
    /// A configuration with the default worker pool (2) and checkpoint
    /// cadence (every 8 rounds).
    pub fn new<P: Into<PathBuf>>(state_dir: P) -> Self {
        Self {
            state_dir: state_dir.into(),
            workers: 2,
            checkpoint_interval: 8,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobPhase {
    fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "pending",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Cancelled => "cancelled",
            JobPhase::Failed => "failed",
        }
    }

    fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Cancelled | JobPhase::Failed
        )
    }
}

/// Mutable job state shared between the worker advancing the sweep and the
/// connection threads streaming it to watchers.
#[derive(Debug)]
struct JobProgress {
    phase: JobPhase,
    round: usize,
    rounds: usize,
    /// Snapshot frames in publication order; watchers replay from index 0.
    frames: Vec<Json>,
    /// The terminal `result` frame, once the job completes.
    result: Option<Json>,
    message: Option<String>,
    cancel_requested: bool,
}

struct JobCell {
    id: u64,
    dir: PathBuf,
    state: Mutex<JobProgress>,
    cv: Condvar,
}

struct Shared {
    config: DaemonConfig,
    jobs: Mutex<BTreeMap<u64, Arc<JobCell>>>,
    queue: Mutex<VecDeque<u64>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    serve_addr: Mutex<Option<SocketAddr>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running daemon instance. Cheap to clone; all clones share one worker
/// pool and job store.
#[derive(Clone)]
pub struct Daemon {
    shared: Arc<Shared>,
}

/// Locks a mutex, recovering the data even when a previous holder
/// panicked. Worker panics are already converted into failed jobs by the
/// `catch_unwind` net in [`run_job`], so the protected state is consistent
/// at unlock; propagating poisoning here would instead let one bad job
/// panic every thread that later touches shared state.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Daemon {
    /// Starts the worker pool, after re-enqueueing every unfinished job
    /// found in the state directory — this is the crash-recovery path: jobs
    /// recorded `pending` or `running` resume from their last checkpoint
    /// archive.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or scanning the state directory.
    pub fn start(config: DaemonConfig) -> io::Result<Self> {
        std::fs::create_dir_all(&config.state_dir)?;
        let worker_count = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            serve_addr: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
        });
        recover_jobs(&shared)?;
        let mut workers = lock_unpoisoned(&shared.workers);
        for index in 0..worker_count {
            let worker_shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("harpd-worker-{index}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        drop(workers);
        Ok(Self { shared })
    }

    /// Serves connections on the listener until a `shutdown` request
    /// arrives, then joins the worker pool. Each connection gets its own
    /// thread; the in-process twin for tests is [`Daemon::handle`].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the listener itself.
    pub fn serve(&self, listener: TcpListener) -> io::Result<()> {
        *lock_unpoisoned(&self.shared.serve_addr) = Some(listener.local_addr()?);
        for stream in listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                if let Ok(mut transport) = TcpTransport::new(stream) {
                    handle_transport(&shared, &mut transport);
                }
            });
        }
        self.join();
        Ok(())
    }

    /// Handles one client connection over any transport — the deterministic
    /// in-process entry point the protocol suite uses via
    /// [`crate::transport::duplex`].
    pub fn handle<T: FrameTransport>(&self, mut transport: T) {
        handle_transport(&self.shared, &mut transport);
    }

    /// Requests shutdown: running jobs checkpoint and fall back to
    /// `pending`, workers drain, the accept loop unblocks.
    pub fn begin_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Joins the worker pool (idempotent; implies [`Daemon::begin_shutdown`]).
    pub fn join(&self) {
        begin_shutdown(&self.shared);
        let handles: Vec<JoinHandle<()>> =
            lock_unpoisoned(&self.shared.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn begin_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue_cv.notify_all();
    for cell in lock_unpoisoned(&shared.jobs).values() {
        cell.cv.notify_all();
    }
    // Unblock the accept loop with a throwaway connection.
    if let Some(addr) = *lock_unpoisoned(&shared.serve_addr) {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    }
}

/// Rebuilds the job table from the state directory. Unreadable job records
/// are skipped with a warning (a crash between directory creation and the
/// first durable write leaves an empty shell); unfinished jobs re-enter the
/// queue.
fn recover_jobs(shared: &Arc<Shared>) -> io::Result<()> {
    let mut max_id = 0u64;
    for entry in std::fs::read_dir(&shared.config.state_dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(id) = name
            .to_str()
            .and_then(|n| n.strip_prefix("JOB_"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        let dir = entry.path();
        let record = match std::fs::read_to_string(dir.join(JOB_FILE))
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(record) => record,
            Err(err) => {
                eprintln!(
                    "harpd: skipping {}: unreadable {JOB_FILE}: {err}",
                    dir.display()
                );
                continue;
            }
        };
        let state_name = record
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("pending")
            .to_owned();
        let message = record
            .get("message")
            .and_then(Json::as_str)
            .map(str::to_owned);
        max_id = max_id.max(id.saturating_add(1));
        let (round, rounds) = match read_manifest(&dir) {
            Ok(manifest) => (manifest.round, manifest.config.rounds),
            Err(_) => (0, 0),
        };
        let (phase, result) = match state_name.as_str() {
            "done" => match std::fs::read_to_string(dir.join(RESULT_FILE))
                .ok()
                .and_then(|text| Json::parse(&text).ok())
            {
                Some(result) => (JobPhase::Done, Some(result)),
                // A `done` record without a readable result cannot happen
                // under the durable write order; treat it as corruption.
                None => (JobPhase::Failed, None),
            },
            "cancelled" => (JobPhase::Cancelled, None),
            "failed" => (JobPhase::Failed, None),
            // `pending` and `running` (the kill -9 case) both restart from
            // the last checkpoint archive.
            _ => (JobPhase::Queued, None),
        };
        let cell = Arc::new(JobCell {
            id,
            dir,
            state: Mutex::new(JobProgress {
                phase,
                round,
                rounds,
                frames: Vec::new(),
                result,
                message,
                cancel_requested: false,
            }),
            cv: Condvar::new(),
        });
        lock_unpoisoned(&shared.jobs).insert(id, cell);
        if phase == JobPhase::Queued {
            lock_unpoisoned(&shared.queue).push_back(id);
        }
    }
    shared.next_id.store(max_id, Ordering::SeqCst);
    Ok(())
}

fn persist_job_record(cell: &JobCell, state: &str, message: Option<&str>) -> Result<(), String> {
    let mut entries = vec![
        ("schema".to_owned(), Json::from_u64(1)),
        ("id".to_owned(), Json::from_u64(cell.id)),
        ("state".to_owned(), Json::Str(state.to_owned())),
    ];
    if let Some(message) = message {
        entries.push(("message".to_owned(), Json::Str(message.to_owned())));
    }
    write_json_atomically(&cell.dir.join(JOB_FILE), &Json::Object(entries))
        .map_err(|e| format!("could not persist job record: {e}"))
}

fn submit_job(
    shared: &Arc<Shared>,
    config: &EvaluationConfig,
    profilers: &[ProfilerKind],
) -> Result<u64, String> {
    let data_bits = config.data_bits;
    HammingCode::random(data_bits, 0)
        .map_err(|e| format!("data_bits {data_bits} does not yield a valid code: {e}"))?;
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
    let dir = shared.config.state_dir.join(format!("JOB_{id}"));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    // The round-0 archive plus the job record make the job durable *before*
    // the acknowledgement: once the submitter sees an id, a killed daemon
    // will finish the job after restart.
    let sweep = ResumableSweep::new(config, profilers, |seed| {
        // lint:allow(panic) validity is seed-independent and was probed above; the factory closure has no error channel
        HammingCode::random(data_bits, seed).expect("probed above, seed-independent")
    });
    sweep
        .write_archive(&dir)
        .map_err(|e| format!("could not write job archive: {e}"))?;
    let cell = Arc::new(JobCell {
        id,
        dir,
        state: Mutex::new(JobProgress {
            phase: JobPhase::Queued,
            round: 0,
            rounds: config.rounds,
            frames: Vec::new(),
            result: None,
            message: None,
            cancel_requested: false,
        }),
        cv: Condvar::new(),
    });
    persist_job_record(&cell, "pending", None)?;
    lock_unpoisoned(&shared.jobs).insert(id, cell);
    lock_unpoisoned(&shared.queue).push_back(id);
    shared.queue_cv.notify_one();
    Ok(id)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job_id = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(id) = queue.pop_front() {
                    break id;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = guard;
            }
        };
        let cell = lock_unpoisoned(&shared.jobs).get(&job_id).cloned();
        if let Some(cell) = cell {
            run_job(shared, &cell);
        }
    }
}

fn run_job(shared: &Shared, cell: &JobCell) {
    {
        let mut state = lock_unpoisoned(&cell.state);
        if state.phase != JobPhase::Queued {
            // Cancelled while still in the queue.
            return;
        }
        state.phase = JobPhase::Running;
        cell.cv.notify_all();
    }
    let _ = persist_job_record(cell, "running", None);
    // A panic anywhere in the drive loop must fail the *job*, never the
    // worker: a job stuck in `running` with its worker thread dead would
    // never reach a terminal phase, and every watcher would poll its
    // condvar until daemon shutdown. (The known panic source — non-finite
    // floats in the render path — is handled as a typed error below, but
    // the unwind guard keeps the terminal-frame guarantee even for panics
    // this code has not anticipated.)
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drive_job(shared, cell)))
            .unwrap_or_else(|panic| Err(panic_message(&panic)));
    if let Err(message) = outcome {
        let _ = persist_job_record(cell, "failed", Some(&message));
        let mut state = lock_unpoisoned(&cell.state);
        state.phase = JobPhase::Failed;
        state.message = Some(message);
        cell.cv.notify_all();
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    let detail = panic
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| panic.downcast_ref::<&str>().copied())
        .unwrap_or("unknown panic");
    format!("worker panicked: {detail}")
}

/// Advances one job to a terminal state (or to a checkpointed `pending` on
/// daemon shutdown). Every failure path is a returned `Err` — a corrupt
/// archive must fail the job, never the daemon.
fn drive_job(shared: &Shared, cell: &JobCell) -> Result<(), String> {
    let manifest = read_manifest(&cell.dir).map_err(|e| e.to_string())?;
    let data_bits = manifest.config.data_bits;
    HammingCode::random(data_bits, 0)
        .map_err(|e| format!("archived data_bits {data_bits} does not yield a valid code: {e}"))?;
    let mut sweep = ResumableSweep::resume(&cell.dir, |seed| {
        // lint:allow(panic) validity is seed-independent and was probed above; the factory closure has no error channel
        HammingCode::random(data_bits, seed).expect("probed above, seed-independent")
    })
    .map_err(|e| e.to_string())?;
    push_snapshot(cell, &sweep)?;
    let interval = shared.config.checkpoint_interval.max(1);
    while !sweep.is_complete() {
        let cancelled = lock_unpoisoned(&cell.state).cancel_requested;
        if cancelled {
            sweep
                .write_archive(&cell.dir)
                .map_err(|e| format!("could not checkpoint cancelled job: {e}"))?;
            persist_job_record(cell, "cancelled", None)?;
            let mut state = lock_unpoisoned(&cell.state);
            state.phase = JobPhase::Cancelled;
            cell.cv.notify_all();
            return Ok(());
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Checkpoint and fall back to `pending`: the next daemon start
            // (or a later worker, if shutdown is aborted) picks it up.
            sweep
                .write_archive(&cell.dir)
                .map_err(|e| format!("could not checkpoint for shutdown: {e}"))?;
            persist_job_record(cell, "pending", None)?;
            let mut state = lock_unpoisoned(&cell.state);
            state.phase = JobPhase::Queued;
            cell.cv.notify_all();
            return Ok(());
        }
        sweep.advance(1);
        push_snapshot(cell, &sweep)?;
        if sweep.round() % interval == 0 && !sweep.is_complete() {
            sweep
                .write_archive(&cell.dir)
                .map_err(|e| format!("could not write checkpoint: {e}"))?;
        }
    }
    let encoded = harp_sim::checkpoint::try_encode_sweep(&sweep.into_sweep())
        .map_err(|e| format!("could not render result: {e}"))?;
    let result = Json::Object(vec![
        ("type".to_owned(), Json::Str("result".to_owned())),
        ("job".to_owned(), Json::from_u64(cell.id)),
        ("sweep".to_owned(), encoded),
    ]);
    write_json_atomically(&cell.dir.join(RESULT_FILE), &result)
        .map_err(|e| format!("could not write result: {e}"))?;
    persist_job_record(cell, "done", None)?;
    let mut state = lock_unpoisoned(&cell.state);
    state.phase = JobPhase::Done;
    state.result = Some(result);
    cell.cv.notify_all();
    Ok(())
}

/// Builds one watcher snapshot frame. Fallible because the coverage means
/// pass through JSON: a non-finite value used to panic the worker thread
/// here, which left the job `running` forever with no thread advancing it.
fn snapshot_frame(
    id: u64,
    round: usize,
    rounds: usize,
    progress: &[(ProfilerKind, f64)],
) -> Result<Json, NonFiniteFloat> {
    let coverage = progress
        .iter()
        .map(|(kind, mean)| {
            Ok(Json::Object(vec![
                ("profiler".to_owned(), Json::Str(kind.name().to_owned())),
                (
                    "mean_direct_coverage".to_owned(),
                    Json::try_from_f64(*mean)?,
                ),
            ]))
        })
        .collect::<Result<Vec<Json>, NonFiniteFloat>>()?;
    Ok(Json::Object(vec![
        ("type".to_owned(), Json::Str("snapshot".to_owned())),
        ("job".to_owned(), Json::from_u64(id)),
        ("round".to_owned(), Json::from_usize(round)),
        ("rounds".to_owned(), Json::from_usize(rounds)),
        ("coverage".to_owned(), Json::Array(coverage)),
    ]))
}

fn push_snapshot(cell: &JobCell, sweep: &ResumableSweep) -> Result<(), String> {
    let frame = snapshot_frame(
        cell.id,
        sweep.round(),
        sweep.config().rounds,
        &sweep.progress(),
    )
    .map_err(|e| format!("could not render snapshot: {e}"))?;
    let mut state = lock_unpoisoned(&cell.state);
    state.round = sweep.round();
    state.rounds = sweep.config().rounds;
    state.frames.push(frame);
    cell.cv.notify_all();
    Ok(())
}

fn job_frame_locked(id: u64, state: &JobProgress) -> Json {
    let mut entries = vec![
        ("type".to_owned(), Json::Str("job".to_owned())),
        ("job".to_owned(), Json::from_u64(id)),
        ("state".to_owned(), Json::Str(state.phase.name().to_owned())),
        ("round".to_owned(), Json::from_usize(state.round)),
        ("rounds".to_owned(), Json::from_usize(state.rounds)),
    ];
    if let Some(message) = &state.message {
        entries.push(("message".to_owned(), Json::Str(message.clone())));
    }
    Json::Object(entries)
}

fn job_frame(cell: &JobCell) -> Json {
    job_frame_locked(cell.id, &lock_unpoisoned(&cell.state))
}

fn submitted_frame(id: u64) -> Json {
    Json::Object(vec![
        ("type".to_owned(), Json::Str("submitted".to_owned())),
        ("job".to_owned(), Json::from_u64(id)),
    ])
}

fn jobs_frame(shared: &Shared) -> Json {
    let jobs = lock_unpoisoned(&shared.jobs)
        .values()
        .map(|cell| job_frame(cell))
        .collect();
    Json::Object(vec![
        ("type".to_owned(), Json::Str("jobs".to_owned())),
        ("jobs".to_owned(), Json::Array(jobs)),
    ])
}

fn get_job(shared: &Shared, id: u64) -> Option<Arc<JobCell>> {
    lock_unpoisoned(&shared.jobs).get(&id).cloned()
}

fn request_cancel(cell: &JobCell) {
    let mut state = lock_unpoisoned(&cell.state);
    state.cancel_requested = true;
    if state.phase == JobPhase::Queued {
        // Never started: transition here; a worker that later pops the id
        // sees the terminal phase and skips it.
        state.phase = JobPhase::Cancelled;
        drop(state);
        let _ = persist_job_record(cell, "cancelled", None);
    }
    cell.cv.notify_all();
}

/// Streams the job's snapshot frames from round 0, then exactly one
/// terminal frame: the stored `result` for completed jobs, a `job` status
/// frame for cancelled/failed ones.
fn watch_job<T: FrameTransport>(
    shared: &Shared,
    cell: &JobCell,
    transport: &mut T,
) -> io::Result<()> {
    let mut cursor = 0usize;
    loop {
        let (pending, terminal) = {
            let mut state = lock_unpoisoned(&cell.state);
            loop {
                if cursor < state.frames.len() || state.phase.is_terminal() {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(state);
                    return transport.send(&proto::error_frame("daemon is shutting down"));
                }
                let (guard, _) = cell
                    .cv
                    .wait_timeout(state, Duration::from_millis(200))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = guard;
            }
            let pending: Vec<Json> = state.frames[cursor..].to_vec();
            cursor = state.frames.len();
            let terminal = if state.phase.is_terminal() {
                Some(match (&state.result, state.phase) {
                    (Some(result), JobPhase::Done) => result.clone(),
                    _ => job_frame_locked(cell.id, &state),
                })
            } else {
                None
            };
            (pending, terminal)
        };
        for frame in &pending {
            transport.send(frame)?;
        }
        if let Some(frame) = terminal {
            return transport.send(&frame);
        }
    }
}

fn handle_transport<T: FrameTransport>(shared: &Arc<Shared>, transport: &mut T) {
    loop {
        let frame = match transport.recv() {
            Ok(Some(frame)) => frame,
            Ok(None) => return,
            Err(err) => {
                // Tell the peer what was wrong with its bytes, then drop
                // the connection: framing is unrecoverable after a bad
                // frame.
                let _ = transport.send(&proto::error_frame(&err.to_string()));
                return;
            }
        };
        let request = match proto::decode_request(&frame) {
            Ok(request) => request,
            Err(message) => {
                if transport.send(&proto::error_frame(&message)).is_err() {
                    return;
                }
                continue;
            }
        };
        let with_job =
            |id: u64, transport: &mut T, f: &dyn Fn(&Arc<JobCell>, &mut T) -> io::Result<()>| {
                match get_job(shared, id) {
                    Some(cell) => f(&cell, transport),
                    None => transport.send(&proto::error_frame(&format!("no job {id}"))),
                }
            };
        let outcome = match &request {
            Request::Submit { config, profilers } => match submit_job(shared, config, profilers) {
                Ok(id) => transport.send(&submitted_frame(id)),
                Err(message) => transport.send(&proto::error_frame(&message)),
            },
            Request::Status { job } => with_job(*job, transport, &|cell, transport| {
                transport.send(&job_frame(cell))
            }),
            Request::List => transport.send(&jobs_frame(shared)),
            Request::Watch { job } => with_job(*job, transport, &|cell, transport| {
                watch_job(shared, cell, transport)
            }),
            Request::Cancel { job } => with_job(*job, transport, &|cell, transport| {
                request_cancel(cell);
                transport.send(&job_frame(cell))
            }),
            Request::Shutdown => {
                let acked = transport.send(&proto::ok_frame());
                begin_shutdown(shared);
                acked
            }
        };
        if outcome.is_err() || matches!(request, Request::Shutdown) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, WatchOutcome};
    use crate::transport::duplex;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 1,
            words_per_code: 2,
            rounds: 6,
            error_counts: vec![2],
            probabilities: vec![0.5],
            threads: 1,
            ..EvaluationConfig::quick()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("harpd_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn connect(daemon: &Daemon) -> Client<crate::transport::PairTransport> {
        let (client_end, server_end) = duplex();
        let handler = daemon.clone();
        std::thread::spawn(move || handler.handle(server_end));
        Client::new(client_end)
    }

    #[test]
    fn submit_watch_and_status_complete_a_job() {
        let dir = temp_dir("basic");
        let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
        let mut client = connect(&daemon);
        let kinds = vec![ProfilerKind::HarpU, ProfilerKind::Naive];
        let job = client.submit(&tiny_config(), &kinds).unwrap();

        let mut rounds_seen = Vec::new();
        let outcome = client
            .watch(job, |snapshot| rounds_seen.push(snapshot.round))
            .unwrap();
        let WatchOutcome::Completed(sweep) = outcome else {
            panic!("job did not complete: {outcome:?}");
        };
        assert_eq!(sweep.rounds, 6);
        assert_eq!(sweep.profilers, kinds);
        assert_eq!(*rounds_seen.last().unwrap(), 6);
        // Snapshots arrive in round order, starting from the resume point.
        assert!(rounds_seen.windows(2).all(|w| w[0] < w[1]));

        let status = client.status(job).unwrap();
        assert_eq!(status.state, "done");
        assert_eq!(status.round, 6);
        assert!(client.jobs().unwrap().iter().any(|j| j.job == job));
        // The durable records exist on disk.
        assert!(dir.join(format!("JOB_{job}")).join(RESULT_FILE).exists());

        client.shutdown().unwrap();
        daemon.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_jobs_and_bad_requests_answer_with_errors() {
        let dir = temp_dir("errors");
        let daemon = Daemon::start(DaemonConfig::new(&dir)).unwrap();
        let mut client = connect(&daemon);
        assert!(client.status(999).unwrap_err().contains("no job 999"));
        // The connection survives a protocol-level error.
        assert!(client.jobs().unwrap().is_empty());
        client.shutdown().unwrap();
        daemon.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queued_jobs_cancel_without_running() {
        let dir = temp_dir("cancel");
        // Zero-worker pools never pick jobs up, keeping the job queued.
        let mut config = DaemonConfig::new(&dir);
        config.workers = 1;
        let daemon = Daemon::start(config).unwrap();
        // Occupy the single worker with a longer job, then cancel a queued
        // one behind it.
        let mut client = connect(&daemon);
        let kinds = vec![ProfilerKind::HarpU];
        let long = client
            .submit(
                &EvaluationConfig {
                    rounds: 64,
                    ..tiny_config()
                },
                &kinds,
            )
            .unwrap();
        let queued = client.submit(&tiny_config(), &kinds).unwrap();
        let status = client.cancel(queued).unwrap();
        assert_eq!(status.state, "cancelled");
        let outcome = client.watch(queued, |_| {}).unwrap();
        assert!(matches!(outcome, WatchOutcome::Ended(s) if s.state == "cancelled"));
        // The long job still finishes (or checkpoints at shutdown).
        let _ = client.cancel(long);
        client.shutdown().unwrap();
        daemon.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression for the render-path panic: a non-finite coverage mean used
    /// to abort the worker thread inside the snapshot encoder, leaving the
    /// job `running` forever with no thread left to advance it (and every
    /// watcher polling until shutdown). It must be a typed error instead.
    #[test]
    fn snapshot_frames_reject_non_finite_coverage_instead_of_panicking() {
        let err = snapshot_frame(7, 1, 6, &[(ProfilerKind::HarpU, f64::NAN)]).unwrap_err();
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("cannot represent"));

        let frame = snapshot_frame(7, 1, 6, &[(ProfilerKind::HarpU, 0.5)]).unwrap();
        assert_eq!(frame.get("type").and_then(Json::as_str), Some("snapshot"));
        assert_eq!(
            frame
                .get("coverage")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
    }

    /// A watcher already streaming snapshots when the job is cancelled must
    /// receive exactly one terminal frame (the `cancelled` status) rather
    /// than stalling on a stream that will never produce another snapshot.
    #[test]
    fn watchers_of_a_job_cancelled_mid_stream_get_a_terminal_frame() {
        let dir = temp_dir("cancel_mid_stream");
        let mut config = DaemonConfig::new(&dir);
        config.workers = 1;
        let daemon = Daemon::start(config).unwrap();
        let mut client = connect(&daemon);
        let kinds = vec![ProfilerKind::HarpU];
        // Long enough that the cancel below always lands mid-run.
        let job = client
            .submit(
                &EvaluationConfig {
                    rounds: 65_536,
                    ..tiny_config()
                },
                &kinds,
            )
            .unwrap();

        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let watcher_daemon = daemon.clone();
        let watcher = std::thread::spawn(move || {
            let mut watch_client = connect(&watcher_daemon);
            let mut snapshots = 0usize;
            let outcome = watch_client
                .watch(job, |_| {
                    snapshots += 1;
                    if snapshots == 1 {
                        let _ = started_tx.send(());
                    }
                })
                .unwrap();
            (snapshots, outcome)
        });

        // Cancel only once the job is demonstrably running and streaming.
        started_rx.recv().unwrap();
        client.cancel(job).unwrap();

        let (snapshots, outcome) = watcher.join().unwrap();
        assert!(snapshots >= 1);
        assert!(matches!(outcome, WatchOutcome::Ended(s) if s.state == "cancelled"));
        client.shutdown().unwrap();
        daemon.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every drive-loop failure must end as a `failed` job whose watchers
    /// get a terminal frame — here via a checkpoint archive corrupted while
    /// the job waits in the queue.
    #[test]
    fn corrupt_archives_fail_the_job_and_end_its_watchers() {
        let dir = temp_dir("corrupt_archive");
        let mut config = DaemonConfig::new(&dir);
        config.workers = 1;
        let daemon = Daemon::start(config).unwrap();
        let mut client = connect(&daemon);
        let kinds = vec![ProfilerKind::HarpU];
        // Occupy the single worker so the second job stays queued while we
        // corrupt its archive.
        let long = client
            .submit(
                &EvaluationConfig {
                    rounds: 65_536,
                    ..tiny_config()
                },
                &kinds,
            )
            .unwrap();
        let doomed = client.submit(&tiny_config(), &kinds).unwrap();
        // The submit acknowledgement means the archive is already durable.
        std::fs::write(
            dir.join(format!("JOB_{doomed}"))
                .join(harp_sim::checkpoint::MANIFEST_FILE),
            b"not json",
        )
        .unwrap();
        let _ = client.cancel(long);

        let outcome = client.watch(doomed, |_| {}).unwrap();
        let WatchOutcome::Ended(status) = outcome else {
            panic!("expected a terminal job frame, got {outcome:?}");
        };
        assert_eq!(status.state, "failed");
        assert!(status.message.is_some(), "failed jobs carry a reason");
        client.shutdown().unwrap();
        daemon.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
