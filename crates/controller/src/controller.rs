//! The end-to-end memory controller read/write path.
//!
//! [`MemoryController`] composes the pieces of the paper's HARP-enabled
//! system (Fig. 5): the memory chip with on-die ECC — any
//! [`LinearBlockCode`], so the same controller model runs SEC Hamming,
//! SEC-DED, and DEC BCH words — the bit-repair mechanism with its error
//! profile, and the secondary ECC used for reactive profiling.
//!
//! On every read the controller:
//!
//! 1. receives the post-correction dataword from the chip (on-die ECC has
//!    already corrected what it can — or miscorrected);
//! 2. repairs every profiled bit;
//! 3. hands the remaining word to the secondary ECC, which — during reactive
//!    profiling — corrects and *identifies* at most `t` new at-risk bits,
//!    recording them in the profile;
//! 4. reports any error that exceeded the secondary ECC's capability as an
//!    escaped error (a system-visible failure, the quantity plotted in the
//!    paper's Fig. 10 "after reactive profiling" panel).
//!
//! Scrub-style multi-word accesses go through
//! [`MemoryController::read_range`], which performs the chip phase of the
//! whole range as **one** [`MemoryChip::read_burst`] (single batched syndrome
//! pass, buffers persisted in the controller across calls) and then applies
//! steps 2–4 per word. The scalar [`MemoryController::read`] stays as the
//! byte-identical reference implementation; the controller/module
//! differential suite enforces the equivalence for every code family.

use std::ops::Range;

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::{HammingCode, LinearBlockCode, SecondaryEcc, SecondaryObservation};
use harp_gf2::BitVec;
use harp_memsim::{BurstScratch, MemoryChip, ReadObservation};

use crate::profile::ErrorProfile;
use crate::repair::BitRepairMechanism;

/// The outcome of one controller read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerReadOutcome {
    /// The dataword delivered to the CPU after repair and secondary ECC.
    pub data: BitVec,
    /// Dataword positions newly identified as at risk by reactive profiling
    /// during this read (already recorded into the profile).
    pub newly_identified: Vec<usize>,
    /// Dataword positions whose errors escaped both repair and the secondary
    /// ECC (delivered corrupted to the CPU).
    pub escaped_errors: Vec<usize>,
}

impl ControllerReadOutcome {
    /// Returns `true` if the read delivered correct data.
    pub fn is_correct(&self) -> bool {
        self.escaped_errors.is_empty()
    }
}

/// A memory controller with a bit-repair mechanism and a secondary ECC,
/// generic over the chip's on-die ECC code (default: the paper's SEC
/// Hamming configuration).
#[derive(Debug)]
pub struct MemoryController<C: LinearBlockCode = HammingCode> {
    chip: MemoryChip<C>,
    repair: BitRepairMechanism,
    secondary: SecondaryEcc,
    reactive_profiling_enabled: bool,
    /// Reusable burst buffers for [`MemoryController::read_range`],
    /// persisted so steady-state scrub passes allocate nothing chip-side.
    scratch: BurstScratch,
}

impl<C: LinearBlockCode + Clone> Clone for MemoryController<C> {
    fn clone(&self) -> Self {
        // The scratch is a pure buffer cache, so a clone starts with fresh
        // (lazily sized) buffers; read outcomes are unaffected.
        Self {
            chip: self.chip.clone(),
            repair: self.repair.clone(),
            secondary: self.secondary.clone(),
            reactive_profiling_enabled: self.reactive_profiling_enabled,
            scratch: BurstScratch::new(),
        }
    }
}

impl<C: LinearBlockCode> MemoryController<C> {
    /// Creates a controller around `chip` with an empty error profile.
    pub fn new(chip: MemoryChip<C>, secondary: SecondaryEcc) -> Self {
        Self {
            chip,
            repair: BitRepairMechanism::empty(),
            secondary,
            reactive_profiling_enabled: true,
            scratch: BurstScratch::new(),
        }
    }

    /// Creates a controller seeded with an existing error profile (e.g. the
    /// output of an active profiling phase).
    pub fn with_profile(
        chip: MemoryChip<C>,
        secondary: SecondaryEcc,
        profile: ErrorProfile,
    ) -> Self {
        Self {
            chip,
            repair: BitRepairMechanism::new(profile),
            secondary,
            reactive_profiling_enabled: true,
            scratch: BurstScratch::new(),
        }
    }

    /// Enables or disables reactive profiling (identification of new at-risk
    /// bits by the secondary ECC). Correction still happens either way.
    pub fn set_reactive_profiling(&mut self, enabled: bool) {
        self.reactive_profiling_enabled = enabled;
    }

    /// The underlying memory chip.
    pub fn chip(&self) -> &MemoryChip<C> {
        &self.chip
    }

    /// Mutable access to the underlying memory chip (e.g. to install fault
    /// models in a simulation).
    pub fn chip_mut(&mut self) -> &mut MemoryChip<C> {
        &mut self.chip
    }

    /// The current error profile.
    pub fn profile(&self) -> &ErrorProfile {
        self.repair.profile()
    }

    /// Mutable access to the error profile (used by active profilers).
    pub fn profile_mut(&mut self) -> &mut ErrorProfile {
        self.repair.profile_mut()
    }

    /// The secondary ECC configuration.
    pub fn secondary(&self) -> &SecondaryEcc {
        &self.secondary
    }

    /// Applies a deferred repair-table update: marks `bits` of `word` as
    /// at risk, as an out-of-band profiler would after observing a read
    /// outcome. Returns how many of the bits were newly marked.
    ///
    /// This is the seam the live-traffic co-scheduler uses when reactive
    /// profiling runs *outside* the read path (the read itself has
    /// [`MemoryController::set_reactive_profiling`] disabled, and
    /// identifications land here after a configurable update latency).
    pub fn apply_repair_update<I: IntoIterator<Item = usize>>(
        &mut self,
        word: usize,
        bits: I,
    ) -> usize {
        bits.into_iter()
            .filter(|&bit| self.repair.profile_mut().mark(word, bit))
            .count()
    }

    /// Writes a dataword to ECC word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the dataword length is wrong.
    pub fn write(&mut self, word: usize, data: &BitVec) {
        self.chip.write(word, data);
    }

    /// Reads ECC word `word` through the full path: on-die ECC → bit repair →
    /// secondary ECC (reactive profiling).
    ///
    /// This is the scalar reference implementation;
    /// [`MemoryController::read_range`] is its batched, byte-identical twin.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn read<R: Rng + ?Sized>(&mut self, word: usize, rng: &mut R) -> ControllerReadOutcome {
        let observation = self.chip.read(word, rng);
        finish_read(
            &mut self.repair,
            &self.secondary,
            self.reactive_profiling_enabled,
            word,
            &observation,
        )
    }

    /// Reads every ECC word in `words` through the full path as one scrub
    /// burst: the chip phase runs as a single [`MemoryChip::read_burst`]
    /// (fault sampling in word order on the same RNG stream a scalar `read`
    /// loop would consume, then **one** batched bit-sliced syndrome-kernel
    /// pass whose clean-word masks let all clean words skip the syndrome
    /// resolve), and repair + secondary ECC are applied per word in word
    /// order.
    ///
    /// Outcomes — including profile updates made by reactive profiling — are
    /// byte-identical to calling [`MemoryController::read`] on each word in
    /// order with the same RNG, which stays the reference implementation.
    /// The burst buffers persist inside the controller, so steady-state
    /// scrub passes perform no chip-side heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty, reversed, or extends past the chip's word
    /// count.
    pub fn read_range<R: Rng + ?Sized>(
        &mut self,
        words: Range<usize>,
        rng: &mut R,
    ) -> Vec<ControllerReadOutcome> {
        let Self {
            chip,
            repair,
            secondary,
            reactive_profiling_enabled,
            scratch,
        } = self;
        let observations = chip.read_burst(words.clone(), rng, scratch);
        observations
            .iter()
            .zip(words)
            .map(|(observation, word)| {
                finish_read(
                    repair,
                    secondary,
                    *reactive_profiling_enabled,
                    word,
                    observation,
                )
            })
            .collect()
    }
}

/// Steps 2–4 of the read path (bit repair → secondary ECC → escape
/// reporting) for one chip observation. Shared verbatim by the scalar
/// [`MemoryController::read`] and the burst [`MemoryController::read_range`],
/// so the two paths cannot drift apart.
fn finish_read(
    repair: &mut BitRepairMechanism,
    secondary: &SecondaryEcc,
    reactive_profiling_enabled: bool,
    word: usize,
    observation: &ReadObservation,
) -> ControllerReadOutcome {
    let written = observation.written_data().clone();
    let repaired = repair.repair_read(word, observation.post_correction_data(), &written);

    match secondary.observe(&written, &repaired) {
        SecondaryObservation::Clean => ControllerReadOutcome {
            data: repaired,
            newly_identified: Vec::new(),
            escaped_errors: Vec::new(),
        },
        SecondaryObservation::Identified { positions } => {
            if reactive_profiling_enabled {
                repair.profile_mut().mark_all(word, positions.clone());
            }
            // The secondary ECC corrected the error(s) before delivery.
            ControllerReadOutcome {
                data: written,
                newly_identified: positions,
                escaped_errors: Vec::new(),
            }
        }
        SecondaryObservation::Unsafe { residual_errors } => ControllerReadOutcome {
            data: repaired,
            newly_identified: Vec::new(),
            escaped_errors: residual_errors,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;
    use harp_memsim::FaultModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn controller_with_faults(at_risk: &[usize], probability: f64) -> MemoryController {
        let code = HammingCode::random(64, 31).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(at_risk, probability));
        MemoryController::new(chip, SecondaryEcc::ideal_sec())
    }

    #[test]
    fn clean_word_reads_correctly() {
        let mut controller = controller_with_faults(&[], 0.0);
        let data = BitVec::from_u64(64, 0x0123_4567_89AB_CDEF);
        controller.write(0, &data);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = controller.read(0, &mut rng);
        assert!(outcome.is_correct());
        assert_eq!(outcome.data, data);
        assert!(outcome.newly_identified.is_empty());
    }

    #[test]
    fn single_at_risk_bit_never_escapes() {
        // One raw error: on-die ECC corrects it; nothing reaches the
        // secondary ECC.
        let mut controller = controller_with_faults(&[12], 1.0);
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let outcome = controller.read(0, &mut rng);
        assert!(outcome.is_correct());
        assert!(outcome.newly_identified.is_empty());
    }

    #[test]
    fn reactive_profiling_identifies_single_post_correction_errors() {
        // Two at-risk data bits that always fail: on-die ECC cannot correct
        // the pair, but after repairing one via the profile only one error at
        // a time reaches the secondary ECC.
        let mut controller = controller_with_faults(&[3, 40], 1.0);
        // Pre-profile one of the two bits (as HARP's active phase would).
        controller.profile_mut().mark(0, 3);
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let outcome = controller.read(0, &mut rng);
        assert!(
            outcome.is_correct(),
            "escaped: {:?}",
            outcome.escaped_errors
        );
        // The remaining at-risk bit (40) — or a miscorrection position — is
        // identified and recorded.
        assert!(!outcome.newly_identified.is_empty());
        for &bit in &outcome.newly_identified {
            assert!(controller.profile().contains(0, bit));
        }
    }

    #[test]
    fn unprofiled_multi_bit_errors_escape() {
        let mut controller = controller_with_faults(&[3, 40, 55], 1.0);
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let outcome = controller.read(0, &mut rng);
        assert!(!outcome.is_correct());
        assert!(outcome.escaped_errors.len() >= 2);
        // Nothing was identified because the secondary ECC was overwhelmed.
        assert!(outcome.newly_identified.is_empty());
    }

    #[test]
    fn fully_profiled_word_always_reads_correctly() {
        let mut controller = controller_with_faults(&[3, 40, 55], 1.0);
        controller.profile_mut().mark_all(0, [3, 40, 55]);
        // Also profile any possible miscorrection targets by brute force:
        // with all direct bits repaired, at most one indirect error remains,
        // which the SEC secondary ECC handles.
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..20 {
            let outcome = controller.read(0, &mut rng);
            assert!(outcome.is_correct());
        }
    }

    #[test]
    fn disabling_reactive_profiling_still_corrects_but_does_not_record() {
        let mut controller = controller_with_faults(&[3, 40], 1.0);
        controller.profile_mut().mark(0, 3);
        controller.set_reactive_profiling(false);
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let outcome = controller.read(0, &mut rng);
        assert!(outcome.is_correct());
        assert!(!outcome.newly_identified.is_empty());
        // The identified bit was NOT recorded.
        for &bit in &outcome.newly_identified {
            assert!(!controller.profile().contains(0, bit));
        }
    }

    #[test]
    fn read_range_matches_the_scalar_read_loop() {
        let build = || {
            let code = HammingCode::random(64, 41).unwrap();
            let mut chip = MemoryChip::new(code, 5);
            chip.set_fault_model(0, FaultModel::uniform(&[3, 40], 1.0));
            chip.set_fault_model(2, FaultModel::uniform(&[7], 0.5));
            chip.set_fault_model(3, FaultModel::uniform(&[3, 40, 55], 1.0));
            let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
            controller.profile_mut().mark(0, 3);
            for word in 0..5 {
                controller.write(word, &BitVec::ones(64));
            }
            controller
        };

        let mut scalar = build();
        let mut scalar_rng = ChaCha8Rng::seed_from_u64(77);
        let mut scalar_outcomes = Vec::new();
        for _round in 0..3 {
            for word in 0..5 {
                scalar_outcomes.push(scalar.read(word, &mut scalar_rng));
            }
        }

        let mut burst = build();
        let mut burst_rng = ChaCha8Rng::seed_from_u64(77);
        let mut burst_outcomes = Vec::new();
        for _round in 0..3 {
            burst_outcomes.extend(burst.read_range(0..5, &mut burst_rng));
        }

        assert_eq!(burst_outcomes, scalar_outcomes);
        // Reactive profiling must have recorded the same bits on both paths.
        assert_eq!(burst.profile(), scalar.profile());
    }

    #[test]
    fn controller_is_generic_over_the_code() {
        // A SEC-DED chip behind the same controller: the double error is
        // detected (not miscorrected), reaches the secondary ECC as two
        // errors, and escapes its single-error capability.
        let code = harp_ecc::ExtendedHammingCode::random(64, 19).unwrap();
        let mut chip = MemoryChip::new(code, 2);
        chip.set_fault_model(0, FaultModel::uniform(&[3, 9], 1.0));
        let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let outcomes = controller.read_range(0..2, &mut rng);
        assert_eq!(outcomes[0].escaped_errors, vec![3, 9]);
        assert!(outcomes[1].is_correct());
    }

    #[test]
    fn cloned_controllers_read_identically() {
        let mut controller = controller_with_faults(&[5, 9], 0.5);
        controller.write(0, &BitVec::ones(64));
        let mut clone = controller.clone();
        let mut rng_a = ChaCha8Rng::seed_from_u64(12);
        let mut rng_b = ChaCha8Rng::seed_from_u64(12);
        assert_eq!(
            controller.read_range(0..1, &mut rng_a),
            clone.read_range(0..1, &mut rng_b)
        );
    }

    #[test]
    #[should_panic(expected = "empty or reversed")]
    fn read_range_rejects_empty_ranges() {
        let mut controller = controller_with_faults(&[], 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        controller.read_range(0..0, &mut rng);
    }

    #[test]
    fn apply_repair_update_marks_only_new_bits() {
        let mut controller = controller_with_faults(&[3, 40], 1.0);
        assert_eq!(controller.apply_repair_update(0, [3, 40]), 2);
        // Re-applying the same update is idempotent.
        assert_eq!(controller.apply_repair_update(0, [3, 40, 55]), 1);
        for bit in [3, 40, 55] {
            assert!(controller.profile().contains(0, bit));
        }
        // A deferred update has the same effect as inline reactive
        // profiling: the fully profiled word now reads correctly.
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert!(controller.read(0, &mut rng).is_correct());
    }

    #[test]
    fn with_profile_seeds_the_repair_mechanism() {
        let code = HammingCode::random(64, 33).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[1, 2], 1.0));
        let mut profile = ErrorProfile::new();
        profile.mark_all(0, [1, 2]);
        let mut controller =
            MemoryController::with_profile(chip, SecondaryEcc::ideal_sec(), profile);
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let outcome = controller.read(0, &mut rng);
        assert!(outcome.is_correct());
        assert_eq!(controller.secondary().correction_capability(), 1);
    }
}
