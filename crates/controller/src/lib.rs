//! Memory-controller substrate for the HARP reproduction.
//!
//! The paper's system model (Fig. 1 / Fig. 5) places three error-mitigation
//! resources inside the memory controller:
//!
//! * an **error profile** — the list of bits known to be at risk of
//!   post-correction error ([`profile::ErrorProfile`]);
//! * a **repair mechanism** — hardware that repairs profiled bits on every
//!   access ([`repair`]); the paper's case study assumes an ideal
//!   bit-granularity repair, and [`granularity`] reproduces the Fig. 2
//!   analysis of why bit-granularity repair is the right choice at high error
//!   rates;
//! * a **secondary ECC** used by HARP's reactive profiling phase
//!   (re-exported from [`harp_ecc::SecondaryEcc`]).
//!
//! [`controller::MemoryController`] ties these together with a
//! [`harp_memsim::MemoryChip`] into the end-to-end read path evaluated in the
//! paper's Fig. 10 case study.
//!
//! # Example
//!
//! ```
//! use harp_controller::{MemoryController, ErrorProfile};
//! use harp_ecc::{HammingCode, SecondaryEcc};
//! use harp_gf2::BitVec;
//! use harp_memsim::{MemoryChip, FaultModel};
//! use rand::SeedableRng;
//!
//! let code = HammingCode::random(64, 11)?;
//! let mut chip = MemoryChip::new(code, 1);
//! chip.set_fault_model(0, FaultModel::uniform(&[8], 1.0));
//!
//! let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! controller.write(0, &BitVec::ones(64));
//! let outcome = controller.read(0, &mut rng);
//! // The single raw error is corrected by on-die ECC; nothing escapes.
//! assert!(outcome.escaped_errors.is_empty());
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod controller;
pub mod granularity;
pub mod mechanisms;
pub mod profile;
pub mod repair;
pub mod sparing;

pub use controller::{ControllerReadOutcome, MemoryController};
pub use granularity::{expected_wasted_storage, RepairCatalogEntry, REPAIR_CATALOG};
pub use mechanisms::{ArchShieldRepair, EcpRepair};
pub use profile::ErrorProfile;
pub use repair::BitRepairMechanism;
pub use sparing::{BlockRepairMechanism, SparingOutcome};
