//! Memory-controller substrate for the HARP reproduction.
//!
//! The paper's system model (Fig. 1 / Fig. 5) places three error-mitigation
//! resources inside the memory controller:
//!
//! * an **error profile** — the list of bits known to be at risk of
//!   post-correction error ([`profile::ErrorProfile`]);
//! * a **repair mechanism** — hardware that repairs profiled bits on every
//!   access ([`repair`]); the paper's case study assumes an ideal
//!   bit-granularity repair, [`granularity`] reproduces the Fig. 2 analysis
//!   of why bit-granularity repair is the right choice at high error rates,
//!   and [`sparing`] / [`mechanisms`] model the finite-capacity designs of
//!   Table 1 (block sparing, ECP pointers, ArchShield two-level repair) with
//!   exact waste/overflow accounting;
//! * a **secondary ECC** used by HARP's reactive profiling phase
//!   (re-exported from [`harp_ecc::SecondaryEcc`]).
//!
//! [`controller::MemoryController`] ties these together with a
//! [`harp_memsim::MemoryChip`] into the end-to-end read path evaluated in the
//! paper's Fig. 10 case study. The controller is generic over the chip's
//! on-die ECC [`harp_ecc::LinearBlockCode`] (SEC Hamming — the default —
//! SEC-DED, or DEC BCH all run through the same path), and scrub-style
//! multi-word accesses run through the burst engine:
//! [`MemoryController::read_range`] performs the chip phase of a whole word
//! range as one `MemoryChip::read_burst` (a single batched syndrome-kernel
//! pass, buffers persisted across calls) before applying repair and
//! secondary ECC per word. The scalar [`MemoryController::read`] stays as
//! the byte-identical reference enforced by the controller/module
//! differential suite.
//!
//! # Example
//!
//! ```
//! use harp_controller::{MemoryController, ErrorProfile};
//! use harp_ecc::{ExtendedHammingCode, SecondaryEcc};
//! use harp_gf2::BitVec;
//! use harp_memsim::{MemoryChip, FaultModel};
//! use rand::SeedableRng;
//!
//! // Any LinearBlockCode works as on-die ECC; here a SEC-DED chip.
//! let code = ExtendedHammingCode::random(64, 11)?;
//! let mut chip = MemoryChip::new(code, 4);
//! chip.set_fault_model(2, FaultModel::uniform(&[8], 1.0));
//!
//! let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! for word in 0..4 {
//!     controller.write(word, &BitVec::ones(64));
//! }
//! // One scrub pass over the chip = one burst through the read path.
//! let outcomes = controller.read_range(0..4, &mut rng);
//! // The single raw error is corrected by on-die ECC; nothing escapes.
//! assert!(outcomes.iter().all(|outcome| outcome.escaped_errors.is_empty()));
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod controller;
pub mod granularity;
pub mod mechanisms;
pub mod profile;
pub mod repair;
pub mod sparing;

pub use controller::{ControllerReadOutcome, MemoryController};
pub use granularity::{expected_wasted_storage, RepairCatalogEntry, REPAIR_CATALOG};
pub use mechanisms::{ArchShieldRepair, EcpRepair};
pub use profile::ErrorProfile;
pub use repair::BitRepairMechanism;
pub use sparing::{BlockRepairMechanism, SparingOutcome};
