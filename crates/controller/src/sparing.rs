//! Coarse-grained (block) repair mechanisms with finite spare capacity.
//!
//! The paper's Table 1 surveys repair mechanisms from page retirement down to
//! single-bit repair, and Fig. 2 quantifies the internal fragmentation of
//! coarse granularities. [`BlockRepairMechanism`] models that whole family:
//! it repairs fixed-size blocks out of a finite pool of spares, so the wasted
//! capacity and the point at which the mechanism runs out of spares can be
//! measured directly and compared against the ideal bit-granularity repair of
//! [`crate::repair::BitRepairMechanism`].

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

/// Outcome of asking a block-repair mechanism to cover a newly identified
/// at-risk bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparingOutcome {
    /// The containing block was already mapped to a spare.
    AlreadyCovered,
    /// A new spare block was allocated.
    Allocated,
    /// The spare pool is exhausted; the bit remains unprotected.
    OutOfSpares,
}

/// A repair mechanism that remaps fixed-size blocks (rows, words, bytes …) to
/// spare storage.
///
/// Bits are addressed as `(word, bit)` pairs exactly like the error profile;
/// a block is a contiguous range of `block_bits` bit positions within a word
/// (for block sizes larger than a word, use one block per word).
///
/// # Example
///
/// ```
/// use harp_controller::sparing::{BlockRepairMechanism, SparingOutcome};
///
/// // Byte-granularity repair (Table 1: "DRM") with two spare bytes.
/// let mut repair = BlockRepairMechanism::new(8, 2);
/// assert_eq!(repair.cover(0, 13), SparingOutcome::Allocated);       // byte 1 of word 0
/// assert_eq!(repair.cover(0, 12), SparingOutcome::AlreadyCovered);  // same byte
/// assert_eq!(repair.cover(1, 0), SparingOutcome::Allocated);
/// assert_eq!(repair.cover(2, 0), SparingOutcome::OutOfSpares);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRepairMechanism {
    block_bits: usize,
    spare_blocks: usize,
    /// Map from (word, block index) to the *distinct* at-risk bit positions
    /// it covers. Tracking positions (not a counter) keeps the fragmentation
    /// accounting exact when the same bit is reported more than once — e.g.
    /// by reactive profiling re-identifying an already-profiled bit.
    allocated: BTreeMap<(usize, usize), BTreeSet<usize>>,
}

impl BlockRepairMechanism {
    /// Creates a mechanism repairing `block_bits`-bit blocks out of a pool of
    /// `spare_blocks` spares.
    ///
    /// # Panics
    ///
    /// Panics if `block_bits` is zero.
    pub fn new(block_bits: usize, spare_blocks: usize) -> Self {
        assert!(block_bits > 0, "block size must be nonzero");
        Self {
            block_bits,
            spare_blocks,
            allocated: BTreeMap::new(),
        }
    }

    /// The repair granularity in bits.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Number of spare blocks still available.
    pub fn spares_remaining(&self) -> usize {
        self.spare_blocks - self.allocated.len()
    }

    /// Number of spare blocks already allocated.
    pub fn spares_used(&self) -> usize {
        self.allocated.len()
    }

    fn block_of(&self, bit: usize) -> usize {
        bit / self.block_bits
    }

    /// Requests coverage of at-risk bit `(word, bit)`. Re-covering a bit that
    /// the block already accounts for is a no-op (the at-risk set per block is
    /// a set of distinct positions, so repeated reports cannot skew
    /// [`BlockRepairMechanism::wasted_bits`]).
    pub fn cover(&mut self, word: usize, bit: usize) -> SparingOutcome {
        let key = (word, self.block_of(bit));
        if let Some(bits) = self.allocated.get_mut(&key) {
            bits.insert(bit);
            return SparingOutcome::AlreadyCovered;
        }
        if self.allocated.len() >= self.spare_blocks {
            return SparingOutcome::OutOfSpares;
        }
        self.allocated.insert(key, BTreeSet::from([bit]));
        SparingOutcome::Allocated
    }

    /// Returns `true` if the bit's containing block is mapped to a spare.
    pub fn is_covered(&self, word: usize, bit: usize) -> bool {
        self.allocated.contains_key(&(word, self.block_of(bit)))
    }

    /// Repairs a read of `word`: every bit whose block is spared is restored
    /// from the reference data.
    ///
    /// # Panics
    ///
    /// Panics if the two datawords have different lengths.
    pub fn repair_read(&self, word: usize, observed: &BitVec, reference: &BitVec) -> BitVec {
        assert_eq!(observed.len(), reference.len(), "dataword length mismatch");
        let mut repaired = observed.clone();
        for bit in 0..repaired.len() {
            if self.is_covered(word, bit) {
                repaired.set(bit, reference.get(bit));
            }
        }
        repaired
    }

    /// Total number of repaired (sacrificed) bits across all allocated
    /// blocks.
    pub fn sacrificed_bits(&self) -> usize {
        self.allocated.len() * self.block_bits
    }

    /// Number of *distinct* at-risk bits covered across all allocated blocks.
    pub fn distinct_at_risk(&self) -> usize {
        self.allocated.values().map(BTreeSet::len).sum()
    }

    /// Number of sacrificed bits that were *not* actually at risk — the
    /// internal fragmentation Fig. 2 quantifies. Always equals
    /// [`Self::sacrificed_bits`]` - `[`Self::distinct_at_risk`], since a block
    /// never accounts for more distinct bits than it holds.
    pub fn wasted_bits(&self) -> usize {
        self.allocated
            .values()
            .map(|at_risk| self.block_bits - at_risk.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_tracks_spare_budget() {
        let mut repair = BlockRepairMechanism::new(64, 2);
        assert_eq!(repair.spares_remaining(), 2);
        assert_eq!(repair.cover(0, 5), SparingOutcome::Allocated);
        assert_eq!(repair.cover(3, 70), SparingOutcome::Allocated);
        assert_eq!(repair.spares_remaining(), 0);
        assert_eq!(repair.cover(9, 0), SparingOutcome::OutOfSpares);
        assert_eq!(repair.spares_used(), 2);
        assert_eq!(repair.block_bits(), 64);
    }

    #[test]
    fn bits_in_the_same_block_share_a_spare() {
        let mut repair = BlockRepairMechanism::new(8, 1);
        assert_eq!(repair.cover(0, 17), SparingOutcome::Allocated);
        assert_eq!(repair.cover(0, 23), SparingOutcome::AlreadyCovered);
        assert_eq!(repair.cover(0, 24), SparingOutcome::OutOfSpares);
        assert!(repair.is_covered(0, 16));
        assert!(!repair.is_covered(0, 24));
        assert!(!repair.is_covered(1, 17));
    }

    #[test]
    fn repair_read_restores_only_covered_blocks() {
        let mut repair = BlockRepairMechanism::new(4, 4);
        repair.cover(0, 1); // covers bits 0..4
        let written = BitVec::ones(12);
        let mut observed = written.clone();
        observed.flip(2); // inside the covered block
        observed.flip(9); // outside
        let repaired = repair.repair_read(0, &observed, &written);
        assert!(repaired.get(2), "covered bit restored");
        assert!(!repaired.get(9), "uncovered bit untouched");
    }

    #[test]
    fn wasted_bits_match_the_fig2_intuition() {
        // One at-risk bit in a 1024-bit block wastes 1023 bits; the same bit
        // under bit-granularity repair wastes nothing.
        let mut coarse = BlockRepairMechanism::new(1024, 8);
        coarse.cover(0, 100);
        assert_eq!(coarse.sacrificed_bits(), 1024);
        assert_eq!(coarse.wasted_bits(), 1023);

        let mut fine = BlockRepairMechanism::new(1, 8);
        fine.cover(0, 100);
        assert_eq!(fine.wasted_bits(), 0);

        // A second at-risk bit in the same coarse block reduces the waste.
        coarse.cover(0, 101);
        assert_eq!(coarse.wasted_bits(), 1022);
    }

    #[test]
    fn re_covering_the_same_bit_does_not_inflate_the_at_risk_count() {
        // Regression: the at-risk count per block used to be a plain counter,
        // so re-covering the same (word, bit) — e.g. reactive profiling
        // re-identifying an already-profiled bit — undercounted fragmentation
        // and could silently saturate the block's accounting.
        let mut repair = BlockRepairMechanism::new(8, 2);
        assert_eq!(repair.cover(0, 3), SparingOutcome::Allocated);
        assert_eq!(repair.cover(0, 3), SparingOutcome::AlreadyCovered);
        assert_eq!(repair.cover(0, 3), SparingOutcome::AlreadyCovered);
        assert_eq!(repair.distinct_at_risk(), 1);
        assert_eq!(repair.wasted_bits(), 7, "one distinct at-risk bit wastes 7");
        // A genuinely new bit in the same block still reduces the waste.
        assert_eq!(repair.cover(0, 5), SparingOutcome::AlreadyCovered);
        assert_eq!(repair.distinct_at_risk(), 2);
        assert_eq!(repair.wasted_bits(), 6);
    }

    #[test]
    #[should_panic(expected = "block size must be nonzero")]
    fn zero_block_size_is_rejected() {
        BlockRepairMechanism::new(0, 1);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Waste accounting is exact: every sacrificed bit is either a
            /// distinct covered at-risk bit or counted as waste, even when
            /// the cover sequence repeats bits and overflows the spare pool.
            #[test]
            fn wasted_plus_distinct_equals_sacrificed(
                block_bits in 1usize..=64,
                spare_blocks in 0usize..=6,
                covers in proptest::collection::vec((0usize..4, 0usize..256), 0..64),
            ) {
                let mut repair = BlockRepairMechanism::new(block_bits, spare_blocks);
                for &(word, bit) in &covers {
                    repair.cover(word, bit);
                }
                prop_assert_eq!(
                    repair.wasted_bits() + repair.distinct_at_risk(),
                    repair.sacrificed_bits()
                );
                prop_assert!(repair.spares_used() <= spare_blocks);
                prop_assert_eq!(
                    repair.spares_remaining(),
                    spare_blocks - repair.spares_used()
                );
            }
        }
    }
}
