//! Concrete finite-capacity repair mechanisms from the paper's Table 1.
//!
//! The case study in §7.4 assumes an *ideal* bit-repair mechanism so that
//! profiler coverage is the only variable. Real mechanisms have finite spare
//! capacity and different allocation granularities, which determines how many
//! profiled bits they can actually absorb. This module models two
//! representative designs so the repository can answer the follow-up
//! question the paper's Table 1 raises — *how much repair capacity does a
//! profile of a given size require?*
//!
//! * [`EcpRepair`] — ECP-style error-correcting pointers: each memory block
//!   carries a fixed number of pointer entries, each repairing a single bit
//!   (Schechter et al., ISCA 2010). A block whose at-risk bits exceed its
//!   pointer budget overflows and is no longer fully protected.
//! * [`ArchShieldRepair`] — an ArchShield-style two-level design (Nair et
//!   al., ISCA 2013): words with a single at-risk bit are tolerated in place,
//!   while words with multiple at-risk bits are remapped to a finite spare
//!   region.
//!
//! Both expose the same bookkeeping interface so the capacity-planning
//! extension experiment can sweep them against profiles produced by the
//! different profilers.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::profile::ErrorProfile;

/// ECP-style repair: `entries_per_block` single-bit correction pointers per
/// `block_bits`-bit block.
///
/// # Example
///
/// ```
/// use harp_controller::mechanisms::EcpRepair;
///
/// // ECP-6 over 512-bit blocks, as in the original proposal.
/// let mut ecp = EcpRepair::new(512, 6);
/// for bit in 0..6 {
///     assert!(ecp.cover(0, bit));
/// }
/// // The seventh at-risk bit in the same block overflows its entries.
/// assert!(!ecp.cover(0, 6));
/// assert_eq!(ecp.overflowed_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcpRepair {
    block_bits: usize,
    entries_per_block: usize,
    /// Covered bits per (word, block) pair.
    entries: BTreeMap<(usize, usize), BTreeSet<usize>>,
    /// Blocks whose entry budget has been exceeded.
    overflowed: BTreeSet<(usize, usize)>,
}

impl EcpRepair {
    /// Creates an ECP mechanism with `entries_per_block` pointers per
    /// `block_bits`-bit block.
    ///
    /// # Panics
    ///
    /// Panics if `block_bits` is zero.
    pub fn new(block_bits: usize, entries_per_block: usize) -> Self {
        assert!(block_bits > 0, "block size must be nonzero");
        Self {
            block_bits,
            entries_per_block,
            entries: BTreeMap::new(),
            overflowed: BTreeSet::new(),
        }
    }

    /// The block size in bits.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// The pointer budget per block.
    pub fn entries_per_block(&self) -> usize {
        self.entries_per_block
    }

    fn key(&self, word: usize, bit: usize) -> (usize, usize) {
        (word, bit / self.block_bits)
    }

    /// Requests coverage of at-risk bit `(word, bit)`. Returns `true` if the
    /// bit is covered by a pointer entry, `false` if the block's budget is
    /// exhausted. The budget check happens *before* any entry set is created,
    /// so overflow-only blocks (every block of a zero-budget mechanism) never
    /// allocate phantom entries.
    pub fn cover(&mut self, word: usize, bit: usize) -> bool {
        let key = self.key(word, bit);
        match self.entries.get_mut(&key) {
            Some(entries) if entries.contains(&bit) => true,
            Some(entries) if entries.len() < self.entries_per_block => {
                entries.insert(bit);
                true
            }
            None if self.entries_per_block > 0 => {
                self.entries.insert(key, BTreeSet::from([bit]));
                true
            }
            _ => {
                self.overflowed.insert(key);
                false
            }
        }
    }

    /// Returns `true` if the bit is covered by an allocated pointer.
    pub fn is_covered(&self, word: usize, bit: usize) -> bool {
        self.entries
            .get(&self.key(word, bit))
            .is_some_and(|entries| entries.contains(&bit))
    }

    /// Number of pointer entries allocated so far.
    pub fn entries_used(&self) -> usize {
        self.entries.values().map(BTreeSet::len).sum()
    }

    /// Number of blocks whose pointer budget was exceeded at least once.
    pub fn overflowed_blocks(&self) -> usize {
        self.overflowed.len()
    }

    /// Storage overhead in bits: each entry needs `ceil(log2(block_bits))`
    /// address bits plus one replacement bit, for every block that holds at
    /// least one entry.
    pub fn overhead_bits(&self) -> usize {
        let pointer_bits = (usize::BITS - (self.block_bits - 1).leading_zeros()) as usize + 1;
        self.entries.len() * self.entries_per_block * pointer_bits
    }

    /// Loads an error profile (word granularity) into the mechanism,
    /// returning the number of bits left uncovered.
    pub fn load_profile(&mut self, profile: &ErrorProfile) -> usize {
        let mut uncovered = 0;
        for (word, bit) in profile.iter() {
            if !self.cover(word, bit) {
                uncovered += 1;
            }
        }
        uncovered
    }
}

/// ArchShield-style two-level repair: single-bit-faulty words are tolerated
/// in place, multi-bit-faulty words are remapped to a finite spare region.
///
/// # Example
///
/// ```
/// use harp_controller::mechanisms::ArchShieldRepair;
///
/// let mut arch = ArchShieldRepair::new(2);
/// assert!(arch.cover(0, 5));          // first at-risk bit of word 0: in place
/// assert!(arch.cover(0, 9));          // second bit: word 0 is remapped
/// assert_eq!(arch.remapped_words(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchShieldRepair {
    spare_words: usize,
    /// At-risk bits recorded per word.
    fault_map: BTreeMap<usize, BTreeSet<usize>>,
    /// Words remapped into the spare region.
    remapped: BTreeSet<usize>,
    /// Words that needed remapping after the spare region filled up.
    unprotected: BTreeSet<usize>,
}

impl ArchShieldRepair {
    /// Creates a mechanism with a spare region of `spare_words` words.
    pub fn new(spare_words: usize) -> Self {
        Self {
            spare_words,
            fault_map: BTreeMap::new(),
            remapped: BTreeSet::new(),
            unprotected: BTreeSet::new(),
        }
    }

    /// Number of spare words still available.
    pub fn spares_remaining(&self) -> usize {
        self.spare_words - self.remapped.len()
    }

    /// Number of words remapped to the spare region.
    pub fn remapped_words(&self) -> usize {
        self.remapped.len()
    }

    /// Number of multi-bit-faulty words the spare region could not absorb.
    pub fn unprotected_words(&self) -> usize {
        self.unprotected.len()
    }

    /// Requests coverage of at-risk bit `(word, bit)`. Returns `true` if the
    /// word remains protected (in place or remapped), `false` if the word
    /// needed remapping but the spare region is exhausted.
    pub fn cover(&mut self, word: usize, bit: usize) -> bool {
        let bits = self.fault_map.entry(word).or_default();
        bits.insert(bit);
        if bits.len() <= 1 {
            return true;
        }
        if self.remapped.contains(&word) {
            return true;
        }
        if self.remapped.len() < self.spare_words {
            self.remapped.insert(word);
            self.unprotected.remove(&word);
            return true;
        }
        self.unprotected.insert(word);
        false
    }

    /// Returns `true` if the word containing the bit is still protected.
    pub fn is_covered(&self, word: usize, _bit: usize) -> bool {
        match self.fault_map.get(&word) {
            None => true,
            Some(bits) if bits.len() <= 1 => true,
            Some(_) => self.remapped.contains(&word),
        }
    }

    /// Loads an error profile into the mechanism, returning the number of
    /// words left unprotected.
    pub fn load_profile(&mut self, profile: &ErrorProfile) -> usize {
        for (word, bit) in profile.iter() {
            self.cover(word, bit);
        }
        self.unprotected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecp_entries_are_per_block_and_idempotent() {
        let mut ecp = EcpRepair::new(64, 2);
        assert!(ecp.cover(0, 3));
        assert!(ecp.cover(0, 3), "re-covering the same bit is free");
        assert!(ecp.cover(0, 40));
        assert!(!ecp.cover(0, 50), "third distinct bit overflows");
        // A different block of the same word has its own budget.
        assert!(ecp.cover(0, 70));
        assert_eq!(ecp.entries_used(), 3);
        assert_eq!(ecp.overflowed_blocks(), 1);
        assert!(ecp.is_covered(0, 3));
        assert!(!ecp.is_covered(0, 50));
        assert_eq!(ecp.block_bits(), 64);
        assert_eq!(ecp.entries_per_block(), 2);
    }

    #[test]
    fn ecp_overhead_scales_with_allocated_blocks() {
        let mut ecp = EcpRepair::new(512, 6);
        assert_eq!(ecp.overhead_bits(), 0);
        ecp.cover(0, 1);
        let one_block = ecp.overhead_bits();
        assert!(one_block > 0);
        ecp.cover(7, 1);
        assert_eq!(ecp.overhead_bits(), 2 * one_block);
    }

    #[test]
    fn ecp_loads_profiles_and_reports_uncovered_bits() {
        let mut profile = ErrorProfile::new();
        profile.mark_all(0, [1, 2, 3]);
        profile.mark(1, 9);
        let mut ecp = EcpRepair::new(64, 2);
        let uncovered = ecp.load_profile(&profile);
        assert_eq!(uncovered, 1, "word 0 overflows its two entries");
        assert_eq!(ecp.entries_used(), 3);
    }

    #[test]
    fn archshield_tolerates_single_bit_words_in_place() {
        let mut arch = ArchShieldRepair::new(1);
        assert!(arch.cover(0, 5));
        assert!(arch.cover(1, 6));
        assert_eq!(arch.remapped_words(), 0);
        assert!(arch.is_covered(0, 5));
        assert!(arch.is_covered(7, 0), "untouched words are protected");
    }

    #[test]
    fn archshield_remaps_multi_bit_words_until_spares_run_out() {
        let mut arch = ArchShieldRepair::new(1);
        assert!(arch.cover(0, 1));
        assert!(arch.cover(0, 2), "first multi-bit word takes the spare");
        assert_eq!(arch.spares_remaining(), 0);
        assert!(arch.cover(3, 1));
        assert!(!arch.cover(3, 2), "second multi-bit word finds no spare");
        assert_eq!(arch.unprotected_words(), 1);
        assert!(arch.is_covered(0, 1));
        assert!(!arch.is_covered(3, 2));
    }

    #[test]
    fn archshield_loads_profiles() {
        let mut profile = ErrorProfile::new();
        profile.mark_all(0, [0, 1]);
        profile.mark_all(1, [2, 3]);
        profile.mark(2, 4);
        let mut arch = ArchShieldRepair::new(1);
        let unprotected = arch.load_profile(&profile);
        assert_eq!(unprotected, 1);
        assert_eq!(arch.remapped_words(), 1);
    }

    #[test]
    fn ecp_overflow_allocates_no_phantom_entry_sets() {
        // Regression: `cover` used to insert an empty entry set via
        // `entry(key).or_default()` before checking the budget, so every
        // rejected block of a zero-budget mechanism grew the entries map
        // unboundedly (phantom allocated blocks with no pointers). The
        // budget check now runs first; `overhead_bits()` — which charges
        // `entries_per_block * pointer_bits` per allocated block — can no
        // longer be skewed by blocks that never received an entry.
        let mut ecp = EcpRepair::new(64, 0);
        assert!(!ecp.cover(0, 3));
        assert!(!ecp.cover(1, 40));
        assert_eq!(ecp.overflowed_blocks(), 2);
        assert_eq!(ecp.entries_used(), 0);
        assert_eq!(ecp.overhead_bits(), 0);
        assert!(
            ecp.entries.is_empty(),
            "an overflowed cover must not allocate an entry set"
        );

        // A nonzero-budget mechanism keeps its overflow accounting intact.
        let mut ecp = EcpRepair::new(64, 1);
        assert!(ecp.cover(0, 3));
        assert!(!ecp.cover(0, 9));
        assert_eq!(ecp.entries.len(), 1, "only the covered block is allocated");
        let one_block = ecp.overhead_bits();
        assert!(ecp.cover(2, 0));
        assert!(!ecp.cover(2, 9));
        assert_eq!(ecp.overhead_bits(), 2 * one_block);
    }

    #[test]
    #[should_panic(expected = "block size must be nonzero")]
    fn ecp_rejects_zero_blocks() {
        EcpRepair::new(0, 2);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `load_profile`'s uncovered count matches a brute-force recount
            /// of profiled bits that ended up without a pointer entry.
            #[test]
            fn ecp_load_profile_uncovered_matches_brute_force(
                block_bits in 1usize..=64,
                entries_per_block in 0usize..=4,
                bits in proptest::collection::btree_set((0usize..6, 0usize..128), 0..48),
            ) {
                let profile: ErrorProfile = bits.iter().copied().collect();
                let mut ecp = EcpRepair::new(block_bits, entries_per_block);
                let uncovered = ecp.load_profile(&profile);
                let recount = profile
                    .iter()
                    .filter(|&(word, bit)| !ecp.is_covered(word, bit))
                    .count();
                prop_assert_eq!(uncovered, recount);
                prop_assert_eq!(
                    ecp.entries_used() + uncovered,
                    profile.total_bits()
                );
            }

            /// Covering arbitrarily many multi-bit words never underflows the
            /// spare accounting: remapped words are capped by the spare pool
            /// and `spares_remaining` stays consistent.
            #[test]
            fn archshield_spares_never_underflow(
                spare_words in 0usize..=4,
                covers in proptest::collection::vec((0usize..8, 0usize..64), 0..64),
            ) {
                let mut arch = ArchShieldRepair::new(spare_words);
                for &(word, bit) in &covers {
                    arch.cover(word, bit);
                }
                prop_assert!(arch.remapped_words() <= spare_words);
                prop_assert_eq!(
                    arch.spares_remaining(),
                    spare_words - arch.remapped_words()
                );
            }
        }
    }
}
