//! Bit-granularity repair.
//!
//! The paper's case study (§7.4) assumes an *ideal* bit-repair mechanism: any
//! bit present in the error profile is perfectly repaired on every access
//! (e.g. remapped to a known-good spare cell whose content is kept in sync).
//! [`BitRepairMechanism`] models exactly that: profiled bits are restored to
//! their reference (written) value during reads and counted for the
//! spare-capacity bookkeeping real mechanisms (ECP, SECRET, REMAP, …) need.

use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

use crate::profile::ErrorProfile;

/// An ideal bit-granularity repair mechanism driven by an [`ErrorProfile`].
///
/// # Example
///
/// ```
/// use harp_controller::{BitRepairMechanism, ErrorProfile};
/// use harp_gf2::BitVec;
///
/// let mut profile = ErrorProfile::new();
/// profile.mark(0, 3);
/// let repair = BitRepairMechanism::new(profile);
///
/// let written = BitVec::ones(8);
/// let mut observed = written.clone();
/// observed.flip(3); // a post-correction error at a profiled bit
/// let repaired = repair.repair_read(0, &observed, &written);
/// assert_eq!(repaired, written);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitRepairMechanism {
    profile: ErrorProfile,
}

impl BitRepairMechanism {
    /// Creates a repair mechanism using the given error profile.
    pub fn new(profile: ErrorProfile) -> Self {
        Self { profile }
    }

    /// Creates a repair mechanism with an empty profile.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Read access to the profile.
    pub fn profile(&self) -> &ErrorProfile {
        &self.profile
    }

    /// Mutable access to the profile (used by active and reactive profilers
    /// to record newly identified at-risk bits).
    pub fn profile_mut(&mut self) -> &mut ErrorProfile {
        &mut self.profile
    }

    /// Number of spare bits the mechanism must provision (one per profiled
    /// bit for an ECP/SECRET-style design).
    pub fn spare_bits_required(&self) -> usize {
        self.profile.total_bits()
    }

    /// Repairs a post-correction dataword read from ECC word `word`: every
    /// profiled bit of that word is restored to its reference value.
    ///
    /// `reference` models the content of the spare storage that a real
    /// mechanism keeps for repaired bits; in simulation it is the written
    /// data.
    ///
    /// # Panics
    ///
    /// Panics if the two datawords have different lengths.
    pub fn repair_read(&self, word: usize, observed: &BitVec, reference: &BitVec) -> BitVec {
        assert_eq!(observed.len(), reference.len(), "dataword length mismatch");
        let mut repaired = observed.clone();
        for bit in self.profile.bits_for(word) {
            if bit < repaired.len() {
                repaired.set(bit, reference.get(bit));
            }
        }
        repaired
    }

    /// Positions of post-correction errors that the repair mechanism does
    /// *not* cover for this word (errors at unprofiled bits).
    pub fn unrepaired_errors(&self, word: usize, error_positions: &[usize]) -> Vec<usize> {
        error_positions
            .iter()
            .copied()
            .filter(|&bit| !self.profile.contains(word, bit))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mechanism_repairs_nothing() {
        let repair = BitRepairMechanism::empty();
        let written = BitVec::ones(8);
        let mut observed = written.clone();
        observed.flip(2);
        assert_eq!(repair.repair_read(0, &observed, &written), observed);
        assert_eq!(repair.unrepaired_errors(0, &[2]), vec![2]);
        assert_eq!(repair.spare_bits_required(), 0);
    }

    #[test]
    fn profiled_bits_are_restored_to_reference() {
        let mut profile = ErrorProfile::new();
        profile.mark_all(1, [0, 4]);
        let repair = BitRepairMechanism::new(profile);
        let written = BitVec::from_indices(8, [0, 1, 4]);
        let mut observed = written.clone();
        observed.flip(0);
        observed.flip(4);
        observed.flip(6); // unprofiled error survives
        let repaired = repair.repair_read(1, &observed, &written);
        assert!(repaired.get(0));
        assert!(repaired.get(4));
        assert!(repaired.get(6) != written.get(6));
        assert_eq!(repair.unrepaired_errors(1, &[0, 4, 6]), vec![6]);
    }

    #[test]
    fn repair_only_applies_to_the_matching_word() {
        let mut profile = ErrorProfile::new();
        profile.mark(0, 3);
        let repair = BitRepairMechanism::new(profile);
        let written = BitVec::ones(8);
        let mut observed = written.clone();
        observed.flip(3);
        // Word 5 has no profiled bits, so the error remains.
        assert_eq!(repair.repair_read(5, &observed, &written), observed);
    }

    #[test]
    fn spare_bits_track_profile_size() {
        let mut repair = BitRepairMechanism::empty();
        repair.profile_mut().mark(0, 1);
        repair.profile_mut().mark(2, 7);
        repair.profile_mut().mark(2, 7);
        assert_eq!(repair.spare_bits_required(), 2);
        assert!(repair.profile().contains(2, 7));
    }

    #[test]
    fn repairing_a_clean_word_is_a_no_op() {
        let mut profile = ErrorProfile::new();
        profile.mark_all(0, [1, 2, 3]);
        let repair = BitRepairMechanism::new(profile);
        let written = BitVec::from_u64(8, 0xA5);
        assert_eq!(repair.repair_read(0, &written, &written), written);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn repair_read_length_mismatch_panics() {
        BitRepairMechanism::empty().repair_read(0, &BitVec::zeros(4), &BitVec::zeros(5));
    }
}
