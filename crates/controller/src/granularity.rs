//! Repair-granularity analysis (Fig. 2 and Table 1 of the paper).
//!
//! Coarse-grained repair mechanisms sacrifice an entire block (row, page,
//! cache line, …) to repair a single erroneous bit, wasting the block's
//! non-erroneous capacity. Fig. 2 of the paper quantifies this internal
//! fragmentation as a function of the raw bit error rate, motivating
//! bit-granularity repair at the high error rates HARP targets.

use serde::{Deserialize, Serialize};

/// Expected fraction of total memory capacity wasted by repairing
/// uniform-random single-bit errors at a given repair granularity.
///
/// A block of `granularity_bits` bits is repaired whenever it contains at
/// least one erroneous bit (probability `1 − (1 − r)^g`); all of its bits are
/// then sacrificed, of which `g·r` were expected to be truly erroneous.
/// Normalizing by total capacity gives
/// `E[wasted] = (1 − (1 − r)^g) − r`.
///
/// Bit-granularity repair (`g = 1`) therefore wastes nothing, matching the
/// paper's observation that it does not suffer from internal fragmentation.
///
/// # Panics
///
/// Panics if `rber` is outside `[0, 1]` or `granularity_bits == 0`.
///
/// # Example
///
/// ```
/// use harp_controller::expected_wasted_storage;
///
/// // Bit-granularity repair never wastes capacity.
/// assert_eq!(expected_wasted_storage(1e-3, 1), 0.0);
/// // Coarse repair at high error rates wastes most of the chip.
/// assert!(expected_wasted_storage(6.8e-3, 1024) > 0.99);
/// ```
pub fn expected_wasted_storage(rber: f64, granularity_bits: usize) -> f64 {
    assert!((0.0..=1.0).contains(&rber), "rber {rber} outside [0, 1]");
    assert!(granularity_bits > 0, "granularity must be nonzero");
    if granularity_bits == 1 {
        // A repaired block contains exactly the erroneous bit: no waste.
        return 0.0;
    }
    let g = granularity_bits as f64;
    let p_block_repaired = 1.0 - (1.0 - rber).powf(g);
    (p_block_repaired - rber).max(0.0)
}

/// Generates the full Fig. 2 series: for each granularity, the expected
/// wasted-storage ratio at each RBER.
///
/// Returns one `(granularity, Vec<(rber, wasted)>)` entry per granularity.
pub fn wasted_storage_series(
    rbers: &[f64],
    granularities: &[usize],
) -> Vec<(usize, Vec<(f64, f64)>)> {
    granularities
        .iter()
        .map(|&g| {
            (
                g,
                rbers
                    .iter()
                    .map(|&r| (r, expected_wasted_storage(r, g)))
                    .collect(),
            )
        })
        .collect()
}

/// The default RBER sweep used by the Fig. 2 reproduction (log-spaced from
/// 10⁻⁷ to ~0.3, mirroring the paper's x-axis).
pub fn default_rber_sweep() -> Vec<f64> {
    let mut rbers = Vec::new();
    let mut exp = -7.0f64;
    while exp <= -0.5 {
        rbers.push(10f64.powf(exp));
        exp += 0.25;
    }
    rbers
}

/// One row of the paper's Table 1: a repair mechanism and its profiling
/// granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairCatalogEntry {
    /// Profiling granularity category (e.g. "System page").
    pub category: &'static str,
    /// Granularity in bits (representative value from the paper's table).
    pub granularity_bits: usize,
    /// Example mechanisms from the literature.
    pub examples: &'static str,
}

/// The survey of repair mechanisms from Table 1 of the paper.
pub const REPAIR_CATALOG: &[RepairCatalogEntry] = &[
    RepairCatalogEntry {
        category: "System page",
        granularity_bits: 32 * 1024,
        examples: "RAPID, RIO, page retirement",
    },
    RepairCatalogEntry {
        category: "DRAM external row",
        granularity_bits: 64 * 1024,
        examples: "PPR, Agnos, RAIDR, DIVA",
    },
    RepairCatalogEntry {
        category: "DRAM internal row/column",
        granularity_bits: 1024,
        examples: "row/column sparing, Solar",
    },
    RepairCatalogEntry {
        category: "Cache block",
        granularity_bits: 512,
        examples: "FREE-p, CiDRA",
    },
    RepairCatalogEntry {
        category: "Processor word",
        granularity_bits: 64,
        examples: "ArchShield",
    },
    RepairCatalogEntry {
        category: "Byte",
        granularity_bits: 8,
        examples: "DRM",
    },
    RepairCatalogEntry {
        category: "Single bit",
        granularity_bits: 1,
        examples: "ECP, SECRET, REMAP, SFaultMap, HOTH, FLOWER, SAFER, Bit-fix",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_granularity_never_wastes_storage() {
        for rber in [0.0, 1e-7, 1e-4, 1e-2, 0.5, 1.0] {
            assert_eq!(expected_wasted_storage(rber, 1), 0.0, "rber {rber}");
        }
    }

    #[test]
    fn zero_error_rate_wastes_nothing_at_any_granularity() {
        for g in [1usize, 8, 64, 512, 1024] {
            assert_eq!(expected_wasted_storage(0.0, g), 0.0);
        }
    }

    #[test]
    fn coarse_granularity_wastes_more_than_fine_granularity() {
        let rber = 1e-3;
        let mut previous = 0.0;
        for g in [1usize, 32, 64, 512, 1024] {
            let wasted = expected_wasted_storage(rber, g);
            assert!(wasted >= previous, "granularity {g} decreased waste");
            previous = wasted;
        }
    }

    #[test]
    fn paper_headline_number_1024_bits_at_6_8e_3_wastes_over_99_percent() {
        // §2.2: "wasting over 99% of total memory capacity in the worst case
        // for a 1024-bit granularity at a raw bit error rate of 6.8e-3".
        let wasted = expected_wasted_storage(6.8e-3, 1024);
        assert!(wasted > 0.99, "got {wasted}");
    }

    #[test]
    fn waste_eventually_decreases_at_very_high_error_rates() {
        // Once most bits are truly erroneous, repairs stop being wasteful.
        let moderate = expected_wasted_storage(1e-2, 1024);
        let extreme = expected_wasted_storage(0.9, 1024);
        assert!(extreme < moderate);
    }

    #[test]
    fn wasted_storage_is_a_probability() {
        for &g in &[1usize, 32, 64, 512, 1024] {
            for rber in default_rber_sweep() {
                let w = expected_wasted_storage(rber, g);
                assert!((0.0..=1.0).contains(&w), "w={w} at g={g} rber={rber}");
            }
        }
    }

    #[test]
    fn series_has_one_entry_per_granularity_and_rber() {
        let rbers = [1e-6, 1e-4, 1e-2];
        let grans = [1usize, 64, 1024];
        let series = wasted_storage_series(&rbers, &grans);
        assert_eq!(series.len(), 3);
        for (g, points) in &series {
            assert!(grans.contains(g));
            assert_eq!(points.len(), rbers.len());
        }
    }

    #[test]
    fn default_sweep_spans_the_papers_axis() {
        let sweep = default_rber_sweep();
        assert!(sweep.first().copied().unwrap() <= 1.1e-7);
        assert!(sweep.last().copied().unwrap() >= 0.25);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn repair_catalog_matches_table_1_structure() {
        assert_eq!(REPAIR_CATALOG.len(), 7);
        let bit_entry = REPAIR_CATALOG
            .iter()
            .find(|e| e.category == "Single bit")
            .unwrap();
        assert_eq!(bit_entry.granularity_bits, 1);
        assert!(bit_entry.examples.contains("SECRET"));
        // Granularities are listed coarsest-first.
        assert!(REPAIR_CATALOG
            .windows(2)
            .all(|w| w[0].granularity_bits >= w[1].granularity_bits
                || w[0].category == "System page"));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rber_panics() {
        expected_wasted_storage(1.5, 64);
    }

    #[test]
    #[should_panic(expected = "granularity must be nonzero")]
    fn zero_granularity_panics() {
        expected_wasted_storage(0.1, 0);
    }
}
