//! The error profile: the list of bits known to be at risk of
//! post-correction error.
//!
//! Both active and reactive profiling write into the same profile; the repair
//! mechanism reads it on every access. The profile is bit-granular (the
//! finest granularity in Table 1 of the paper), keyed by ECC-word index and
//! dataword bit position within the word.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// A bit-granularity error profile.
///
/// # Example
///
/// ```
/// use harp_controller::ErrorProfile;
///
/// let mut profile = ErrorProfile::new();
/// profile.mark(3, 17);
/// profile.mark_all(3, [2, 17, 40]);
/// assert!(profile.contains(3, 40));
/// assert_eq!(profile.total_bits(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorProfile {
    words: BTreeMap<usize, BTreeSet<usize>>,
}

impl ErrorProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks dataword bit `bit` of ECC word `word` as at risk. Returns `true`
    /// if the bit was newly added.
    pub fn mark(&mut self, word: usize, bit: usize) -> bool {
        self.words.entry(word).or_default().insert(bit)
    }

    /// Marks several bits of one word as at risk.
    pub fn mark_all<I: IntoIterator<Item = usize>>(&mut self, word: usize, bits: I) {
        self.words.entry(word).or_default().extend(bits);
    }

    /// Returns `true` if the bit is already profiled.
    pub fn contains(&self, word: usize, bit: usize) -> bool {
        self.words.get(&word).is_some_and(|s| s.contains(&bit))
    }

    /// The profiled bits of one word (empty set if none).
    pub fn bits_for(&self, word: usize) -> BTreeSet<usize> {
        self.words.get(&word).cloned().unwrap_or_default()
    }

    /// Number of profiled bits in one word.
    pub fn count_for(&self, word: usize) -> usize {
        self.words.get(&word).map_or(0, BTreeSet::len)
    }

    /// Total number of profiled bits across all words.
    pub fn total_bits(&self) -> usize {
        self.words.values().map(BTreeSet::len).sum()
    }

    /// Returns `true` if nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.words.values().all(BTreeSet::is_empty)
    }

    /// Iterates over `(word, bit)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.words
            .iter()
            .flat_map(|(&w, bits)| bits.iter().map(move |&b| (w, b)))
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &ErrorProfile) {
        for (&word, bits) in &other.words {
            self.words
                .entry(word)
                .or_default()
                .extend(bits.iter().copied());
        }
    }

    /// Removes every profiled bit (e.g. before re-profiling).
    pub fn clear(&mut self) {
        self.words.clear();
    }
}

impl FromIterator<(usize, usize)> for ErrorProfile {
    fn from_iter<I: IntoIterator<Item = (usize, usize)>>(iter: I) -> Self {
        let mut profile = Self::new();
        for (word, bit) in iter {
            profile.mark(word, bit);
        }
        profile
    }
}

impl Extend<(usize, usize)> for ErrorProfile {
    fn extend<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) {
        for (word, bit) in iter {
            self.mark(word, bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_profile_is_empty() {
        let profile = ErrorProfile::new();
        assert!(profile.is_empty());
        assert_eq!(profile.total_bits(), 0);
        assert!(!profile.contains(0, 0));
        assert!(profile.bits_for(7).is_empty());
        assert_eq!(profile.count_for(7), 0);
    }

    #[test]
    fn mark_returns_whether_bit_was_new() {
        let mut profile = ErrorProfile::new();
        assert!(profile.mark(1, 5));
        assert!(!profile.mark(1, 5));
        assert!(profile.mark(1, 6));
        assert_eq!(profile.total_bits(), 2);
        assert_eq!(profile.count_for(1), 2);
    }

    #[test]
    fn mark_all_and_bits_for_round_trip() {
        let mut profile = ErrorProfile::new();
        profile.mark_all(2, [9, 3, 3, 1]);
        assert_eq!(
            profile.bits_for(2).into_iter().collect::<Vec<_>>(),
            vec![1, 3, 9]
        );
    }

    #[test]
    fn iter_yields_word_bit_pairs_in_order() {
        let mut profile = ErrorProfile::new();
        profile.mark(5, 0);
        profile.mark(1, 7);
        profile.mark(1, 2);
        let pairs: Vec<(usize, usize)> = profile.iter().collect();
        assert_eq!(pairs, vec![(1, 2), (1, 7), (5, 0)]);
    }

    #[test]
    fn merge_unions_profiles() {
        let mut a: ErrorProfile = [(0, 1), (0, 2)].into_iter().collect();
        let b: ErrorProfile = [(0, 2), (3, 4)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total_bits(), 3);
        assert!(a.contains(3, 4));
    }

    #[test]
    fn extend_and_from_iterator_agree() {
        let pairs = [(1usize, 2usize), (1, 3), (2, 0)];
        let from_iter: ErrorProfile = pairs.into_iter().collect();
        let mut extended = ErrorProfile::new();
        extended.extend(pairs);
        assert_eq!(from_iter, extended);
    }

    #[test]
    fn clear_empties_the_profile() {
        let mut profile: ErrorProfile = [(0, 1)].into_iter().collect();
        profile.clear();
        assert!(profile.is_empty());
    }
}
