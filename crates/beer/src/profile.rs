//! The data-visible miscorrection signature of an on-die ECC code.
//!
//! For a systematic SEC Hamming code, the memory controller can never read
//! the parity bits, so the only externally observable consequence of the
//! proprietary column arrangement is *which data-bit position the decoder
//! miscorrects for a given combination of raw data-bit errors*. The pairwise
//! part of that map — recovered by the BEER test campaign — is what the BEEP
//! profiler uses to craft its targeted data patterns and what HARP-A uses to
//! precompute bits at risk of indirect error.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;

/// For every unordered pair of data-bit positions, the data-bit position (if
/// any) the on-die ECC decoder miscorrects when exactly that pair of raw
/// errors occurs.
///
/// `None` means the double error is *data-invisible beyond the direct
/// errors*: the decoder either miscorrects a parity bit (harmless to data) or
/// detects the error without locating it.
///
/// # Example
///
/// ```
/// use harp_beer::MiscorrectionProfile;
/// use harp_ecc::{HammingCode, LinearBlockCode};
///
/// let code = HammingCode::paper_example();
/// let profile = MiscorrectionProfile::from_code(&code);
/// assert_eq!(profile.data_bits(), 4);
/// // Every recorded target is a data-bit position distinct from the pair.
/// for ((i, j), target) in profile.pairs() {
///     if let Some(m) = target {
///         assert!(*m < 4 && m != i && m != j);
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiscorrectionProfile {
    data_bits: usize,
    pairs: BTreeMap<(usize, usize), Option<usize>>,
}

impl MiscorrectionProfile {
    /// Builds a profile from explicit pair observations.
    ///
    /// # Panics
    ///
    /// Panics if any pair or target position is out of range, if a pair is
    /// not stored in canonical `(low, high)` order, or if a target collides
    /// with its own pair.
    pub fn new(data_bits: usize, pairs: BTreeMap<(usize, usize), Option<usize>>) -> Self {
        for (&(i, j), &target) in &pairs {
            assert!(i < j, "pair ({i}, {j}) must be ordered");
            assert!(j < data_bits, "pair ({i}, {j}) out of range");
            if let Some(m) = target {
                assert!(m < data_bits, "target {m} out of range");
                assert!(m != i && m != j, "target {m} collides with its pair");
            }
        }
        Self { data_bits, pairs }
    }

    /// The ground-truth profile computed directly from a known code (used to
    /// validate what the black-box campaign recovers).
    ///
    /// Works for any [`LinearBlockCode`]: the pair's raw error pattern is
    /// decoded directly (exact for linear codes), and a data-visible
    /// miscorrection is any flipped data position outside the pair. For a
    /// code that corrects double errors (DEC BCH) every target is `None` —
    /// pairwise testing cannot provoke its miscorrections.
    pub fn from_code<C: LinearBlockCode + ?Sized>(code: &C) -> Self {
        let k = code.data_len();
        let mut pairs = BTreeMap::new();
        for i in 0..k {
            for j in (i + 1)..k {
                let error = BitVec::from_indices(code.codeword_len(), [i, j]);
                let result = code.decode_error_pattern(&error);
                let target = result
                    .outcome
                    .corrected_positions()
                    .iter()
                    .copied()
                    .find(|&m| m < k && m != i && m != j);
                pairs.insert((i, j), target);
            }
        }
        Self {
            data_bits: k,
            pairs,
        }
    }

    /// The dataword length the profile describes.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// All pair observations in canonical order.
    pub fn pairs(&self) -> impl Iterator<Item = (&(usize, usize), &Option<usize>)> {
        self.pairs.iter()
    }

    /// The number of pairs that provoke a data-visible miscorrection.
    pub fn miscorrecting_pair_count(&self) -> usize {
        self.pairs.values().filter(|t| t.is_some()).count()
    }

    /// The miscorrection target for a pair of data-bit positions (order
    /// agnostic), or `None` if the pair is data-invisible or was never
    /// observed.
    pub fn miscorrection_target(&self, a: usize, b: usize) -> Option<usize> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied().flatten()
    }

    /// Predicts dataword positions at risk of indirect error given a set of
    /// direct-error at-risk data bits, using pairwise information only.
    ///
    /// This is the profile-level analogue of HARP-A's precomputation. It is a
    /// subset of the full prediction (which also accounts for triples and
    /// larger combinations); reconstructing an equivalent code with
    /// [`crate::reconstruct_equivalent_code`] recovers the rest.
    pub fn predict_indirect_from_direct(&self, direct: &[usize]) -> BTreeSet<usize> {
        let direct_set: BTreeSet<usize> = direct.iter().copied().collect();
        let mut predicted = BTreeSet::new();
        for (idx, &i) in direct.iter().enumerate() {
            for &j in direct.iter().skip(idx + 1) {
                if let Some(m) = self.miscorrection_target(i, j) {
                    if !direct_set.contains(&m) {
                        predicted.insert(m);
                    }
                }
            }
        }
        predicted
    }

    /// Returns `true` if this profile matches the data-visible behaviour of
    /// the given code.
    pub fn is_consistent_with<C: LinearBlockCode + ?Sized>(&self, code: &C) -> bool {
        code.data_len() == self.data_bits && Self::from_code(code) == *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    #[test]
    fn ground_truth_profile_covers_all_pairs() {
        let code = HammingCode::random(16, 5).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        assert_eq!(profile.data_bits(), 16);
        assert_eq!(profile.pairs().count(), 16 * 15 / 2);
        assert!(profile.is_consistent_with(&code));
    }

    #[test]
    fn targets_match_direct_syndrome_computation() {
        let code = HammingCode::random(16, 7).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        for i in 0..16 {
            for j in (i + 1)..16 {
                let syndrome = code.column(i) ^ code.column(j);
                let expected = code.position_for_syndrome(&syndrome).filter(|&m| m < 16);
                assert_eq!(profile.miscorrection_target(i, j), expected);
                // Order agnostic lookup.
                assert_eq!(profile.miscorrection_target(j, i), expected);
            }
        }
    }

    #[test]
    fn pairwise_prediction_is_subset_of_full_harp_a_prediction() {
        use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
        let code = HammingCode::random(16, 9).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        let direct = [0usize, 3, 7, 11];
        let pairwise = profile.predict_indirect_from_direct(&direct);
        let full = predict_indirect_from_direct(&code, &direct, FailureDependence::TrueCell);
        for p in &pairwise {
            assert!(
                full.contains(p),
                "pairwise prediction {p} missing from full prediction"
            );
        }
    }

    #[test]
    fn prediction_excludes_direct_bits() {
        let code = HammingCode::random(16, 13).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        let direct = [1usize, 2, 3, 4, 5];
        let predicted = profile.predict_indirect_from_direct(&direct);
        for d in direct {
            assert!(!predicted.contains(&d));
        }
        assert!(profile.predict_indirect_from_direct(&[]).is_empty());
        assert!(profile.predict_indirect_from_direct(&[0]).is_empty());
    }

    #[test]
    fn different_codes_usually_have_different_profiles() {
        let a = MiscorrectionProfile::from_code(&HammingCode::random(16, 1).unwrap());
        let b = MiscorrectionProfile::from_code(&HammingCode::random(16, 2).unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn miscorrecting_pair_count_is_positive_for_real_codes() {
        // Hamming codes over 16 data bits have many pair sums landing on
        // other data columns.
        let code = HammingCode::random(16, 21).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        assert!(profile.miscorrecting_pair_count() > 0);
    }

    #[test]
    #[should_panic(expected = "must be ordered")]
    fn unordered_pairs_are_rejected() {
        let mut pairs = BTreeMap::new();
        pairs.insert((3usize, 1usize), None);
        MiscorrectionProfile::new(8, pairs);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn self_targets_are_rejected() {
        let mut pairs = BTreeMap::new();
        pairs.insert((1usize, 3usize), Some(3usize));
        MiscorrectionProfile::new(8, pairs);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn profile_round_trips_through_the_campaign(seed in 0u64..200) {
                // The black-box campaign must always recover exactly the
                // ground-truth profile, whatever the secret code is.
                let secret = HammingCode::random(16, seed).unwrap();
                let recovered = crate::BeerCampaign::new(16).extract_profile(&secret);
                prop_assert_eq!(recovered, MiscorrectionProfile::from_code(&secret));
            }

            #[test]
            fn predictions_are_always_within_the_true_indirect_space(
                seed in 0u64..100,
                direct in proptest::collection::btree_set(0usize..16, 2..6),
            ) {
                use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
                let code = HammingCode::random(16, seed).unwrap();
                let profile = MiscorrectionProfile::from_code(&code);
                let direct: Vec<usize> = direct.into_iter().collect();
                let pairwise = profile.predict_indirect_from_direct(&direct);
                let full =
                    predict_indirect_from_direct(&code, &direct, FailureDependence::TrueCell);
                for p in pairwise {
                    prop_assert!(full.contains(&p));
                }
            }

            #[test]
            fn miscorrection_targets_never_collide_with_their_pair(seed in 0u64..100) {
                let code = HammingCode::random(32, seed).unwrap();
                let profile = MiscorrectionProfile::from_code(&code);
                for ((i, j), target) in profile.pairs() {
                    if let Some(m) = target {
                        prop_assert!(m != i && m != j && *m < 32);
                    }
                }
            }
        }
    }
}
