//! The data-visible miscorrection signature of an on-die ECC code.
//!
//! For a systematic SEC Hamming code, the memory controller can never read
//! the parity bits, so the only externally observable consequence of the
//! proprietary column arrangement is *which data-bit position the decoder
//! miscorrects for a given combination of raw data-bit errors*. The pairwise
//! part of that map — recovered by the BEER test campaign — is what the BEEP
//! profiler uses to craft its targeted data patterns and what HARP-A uses to
//! precompute bits at risk of indirect error.
//!
//! Pairwise miscorrections are enough to reverse-engineer a SEC Hamming
//! code, but they carry *zero* information about a SEC-DED extended Hamming
//! code: every data-bit pair is detected (never miscorrected), so all
//! `C(k, 2)` observations collapse to "no data flip". The
//! [`VisibleErrorProfile`] superset therefore also records the decoder's
//! *status flag* (clean / corrected / detected-uncorrectable — the on-die
//! ECC transparency signal discussed alongside "syndrome on correction" in
//! §5.2 of the paper) and the responses to **weight-3** charged patterns,
//! which are the lowest-weight patterns that expose a SEC-DED code's
//! parity-check columns. [`crate::reconstruct_code`] consumes this profile
//! generically for every supported [`crate::CodeFamily`].

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use harp_ecc::{DecodeOutcome, DecodeResult, LinearBlockCode};
use harp_gf2::BitVec;

/// For every unordered pair of data-bit positions, the data-bit position (if
/// any) the on-die ECC decoder miscorrects when exactly that pair of raw
/// errors occurs.
///
/// `None` means the double error is *data-invisible beyond the direct
/// errors*: the decoder either miscorrects a parity bit (harmless to data) or
/// detects the error without locating it.
///
/// # Example
///
/// ```
/// use harp_beer::MiscorrectionProfile;
/// use harp_ecc::{HammingCode, LinearBlockCode};
///
/// let code = HammingCode::paper_example();
/// let profile = MiscorrectionProfile::from_code(&code);
/// assert_eq!(profile.data_bits(), 4);
/// // Every recorded target is a data-bit position distinct from the pair.
/// for ((i, j), target) in profile.pairs() {
///     if let Some(m) = target {
///         assert!(*m < 4 && m != i && m != j);
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiscorrectionProfile {
    data_bits: usize,
    pairs: BTreeMap<(usize, usize), Option<usize>>,
}

impl MiscorrectionProfile {
    /// Builds a profile from explicit pair observations.
    ///
    /// # Panics
    ///
    /// Panics if any pair or target position is out of range, if a pair is
    /// not stored in canonical `(low, high)` order, or if a target collides
    /// with its own pair.
    pub fn new(data_bits: usize, pairs: BTreeMap<(usize, usize), Option<usize>>) -> Self {
        for (&(i, j), &target) in &pairs {
            assert!(i < j, "pair ({i}, {j}) must be ordered");
            assert!(j < data_bits, "pair ({i}, {j}) out of range");
            if let Some(m) = target {
                assert!(m < data_bits, "target {m} out of range");
                assert!(m != i && m != j, "target {m} collides with its pair");
            }
        }
        Self { data_bits, pairs }
    }

    /// The ground-truth profile computed directly from a known code (used to
    /// validate what the black-box campaign recovers).
    ///
    /// Works for any [`LinearBlockCode`]: the pair's raw error pattern is
    /// decoded directly (exact for linear codes), and a data-visible
    /// miscorrection is any flipped data position outside the pair. For a
    /// code that corrects double errors (DEC BCH) every target is `None` —
    /// pairwise testing cannot provoke its miscorrections.
    pub fn from_code<C: LinearBlockCode + ?Sized>(code: &C) -> Self {
        let k = code.data_len();
        let mut pairs = BTreeMap::new();
        for i in 0..k {
            for j in (i + 1)..k {
                let error = BitVec::from_indices(code.codeword_len(), [i, j]);
                let result = code.decode_error_pattern(&error);
                let target = result
                    .outcome
                    .corrected_positions()
                    .iter()
                    .copied()
                    .find(|&m| m < k && m != i && m != j);
                pairs.insert((i, j), target);
            }
        }
        Self {
            data_bits: k,
            pairs,
        }
    }

    /// The dataword length the profile describes.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// All pair observations in canonical order.
    pub fn pairs(&self) -> impl Iterator<Item = (&(usize, usize), &Option<usize>)> {
        self.pairs.iter()
    }

    /// The number of pairs that provoke a data-visible miscorrection.
    pub fn miscorrecting_pair_count(&self) -> usize {
        self.pairs.values().filter(|t| t.is_some()).count()
    }

    /// The miscorrection target for a pair of data-bit positions (order
    /// agnostic), or `None` if the pair is data-invisible or was never
    /// observed.
    pub fn miscorrection_target(&self, a: usize, b: usize) -> Option<usize> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.get(&key).copied().flatten()
    }

    /// Predicts dataword positions at risk of indirect error given a set of
    /// direct-error at-risk data bits, using pairwise information only.
    ///
    /// This is the profile-level analogue of HARP-A's precomputation. It is a
    /// subset of the full prediction (which also accounts for triples and
    /// larger combinations); reconstructing an equivalent code with
    /// [`crate::reconstruct_equivalent_code`] recovers the rest.
    pub fn predict_indirect_from_direct(&self, direct: &[usize]) -> BTreeSet<usize> {
        let direct_set: BTreeSet<usize> = direct.iter().copied().collect();
        let mut predicted = BTreeSet::new();
        for (idx, &i) in direct.iter().enumerate() {
            for &j in direct.iter().skip(idx + 1) {
                if let Some(m) = self.miscorrection_target(i, j) {
                    if !direct_set.contains(&m) {
                        predicted.insert(m);
                    }
                }
            }
        }
        predicted
    }

    /// Returns `true` if this profile matches the data-visible behaviour of
    /// the given code.
    pub fn is_consistent_with<C: LinearBlockCode + ?Sized>(&self, code: &C) -> bool {
        code.data_len() == self.data_bits && Self::from_code(code) == *self
    }
}

/// The status flag an on-die ECC decoder reports alongside a read — the
/// third observable (besides the post-correction data itself) a BEER-style
/// experimenter can record per test pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecodeFlag {
    /// Zero syndrome: the decoder saw nothing (either no raw error, or the
    /// charged pattern silently aliased to another valid codeword).
    Clean,
    /// The decoder performed a correction (possibly a miscorrection, and
    /// possibly of an invisible parity bit).
    Corrected,
    /// The decoder detected an error it could not locate.
    Detected,
}

impl DecodeFlag {
    /// The flag corresponding to a decoder outcome.
    pub fn from_outcome(outcome: &DecodeOutcome) -> Self {
        match outcome {
            DecodeOutcome::NoErrorDetected => DecodeFlag::Clean,
            DecodeOutcome::Corrected { .. } => DecodeFlag::Corrected,
            DecodeOutcome::DetectedUncorrectable => DecodeFlag::Detected,
        }
    }
}

/// The complete data-visible response of the on-die ECC to one charged test
/// pattern: which data positions still differ from the written data after
/// correction, and which status flag the decoder raised.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternResponse {
    /// Post-correction data-error positions (ascending), relative to the
    /// written data.
    pub post_errors: Vec<usize>,
    /// The decoder's reported status.
    pub flag: DecodeFlag,
}

impl PatternResponse {
    /// Computes the response of `code` to the charged data positions
    /// (ground truth, or a reconstruction candidate under test).
    ///
    /// # Panics
    ///
    /// Panics if any charged position is outside the dataword.
    pub fn of_code<C: LinearBlockCode + ?Sized>(code: &C, charged: &[usize]) -> Self {
        let error = BitVec::from_indices(code.codeword_len(), charged.iter().copied());
        let result = code.decode_error_pattern(&error);
        Self::from_decode(&result, code.data_len())
    }

    /// Builds the response from a raw decode result (linearity lets the
    /// pattern be decoded against the all-zero codeword).
    fn from_decode(result: &DecodeResult, data_bits: usize) -> Self {
        let written = BitVec::zeros(data_bits);
        PatternResponse {
            post_errors: result.post_correction_errors(&written),
            flag: DecodeFlag::from_outcome(&result.outcome),
        }
    }

    /// The data-visible miscorrection this response exposes: the first
    /// post-correction error position outside the charged set, if any.
    pub fn miscorrection(&self, charged: &[usize]) -> Option<usize> {
        self.post_errors
            .iter()
            .copied()
            .find(|p| !charged.contains(p))
    }
}

/// Everything a BEER-style campaign can observe about an on-die ECC code
/// from outside the chip: the [`PatternResponse`] of every weight-2 and
/// weight-3 charged data pattern.
///
/// This is the family-generic superset of [`MiscorrectionProfile`]. The
/// pairwise view (via [`VisibleErrorProfile::miscorrection_profile`]) is
/// what BEEP and HARP-A consume; the weight-3 responses and decode flags are
/// what [`crate::reconstruct_code`] needs to reverse-engineer codes — like
/// SEC-DED — whose pairs are all detected and therefore pairwise-invisible.
///
/// # Example
///
/// ```
/// use harp_beer::{DecodeFlag, VisibleErrorProfile};
/// use harp_ecc::ExtendedHammingCode;
///
/// let code = ExtendedHammingCode::random(8, 3)?;
/// let profile = VisibleErrorProfile::from_code(&code);
/// // SEC-DED: every data-bit pair is detected, never miscorrected...
/// assert!(profile.pairs().all(|(_, r)| r.flag == DecodeFlag::Detected));
/// // ...so only the weight-3 responses carry column information.
/// assert!(profile.miscorrecting_triple_count() > 0);
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VisibleErrorProfile {
    data_bits: usize,
    pairs: BTreeMap<(usize, usize), PatternResponse>,
    triples: BTreeMap<(usize, usize, usize), PatternResponse>,
}

impl VisibleErrorProfile {
    /// Builds a profile from explicit pattern observations.
    ///
    /// # Panics
    ///
    /// Panics if any pattern key is not strictly ascending, any position is
    /// out of range, or any recorded post-correction error is out of range.
    pub fn new(
        data_bits: usize,
        pairs: BTreeMap<(usize, usize), PatternResponse>,
        triples: BTreeMap<(usize, usize, usize), PatternResponse>,
    ) -> Self {
        for (&(i, j), response) in &pairs {
            assert!(i < j && j < data_bits, "pair ({i}, {j}) invalid");
            for &p in &response.post_errors {
                assert!(p < data_bits, "post error {p} out of range");
            }
        }
        for (&(i, j, l), response) in &triples {
            assert!(
                i < j && j < l && l < data_bits,
                "triple ({i}, {j}, {l}) invalid"
            );
            for &p in &response.post_errors {
                assert!(p < data_bits, "post error {p} out of range");
            }
        }
        Self {
            data_bits,
            pairs,
            triples,
        }
    }

    /// The ground-truth profile computed directly from a known code. Exact
    /// for any [`LinearBlockCode`], by the same linearity argument as
    /// [`MiscorrectionProfile::from_code`].
    pub fn from_code<C: LinearBlockCode + ?Sized>(code: &C) -> Self {
        let k = code.data_len();
        let mut pairs = BTreeMap::new();
        let mut triples = BTreeMap::new();
        for i in 0..k {
            for j in (i + 1)..k {
                pairs.insert((i, j), PatternResponse::of_code(code, &[i, j]));
                for l in (j + 1)..k {
                    triples.insert((i, j, l), PatternResponse::of_code(code, &[i, j, l]));
                }
            }
        }
        Self {
            data_bits: k,
            pairs,
            triples,
        }
    }

    /// The dataword length the profile describes.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// All pair observations in canonical order.
    pub fn pairs(&self) -> impl Iterator<Item = (&(usize, usize), &PatternResponse)> {
        self.pairs.iter()
    }

    /// All triple observations in canonical order.
    pub fn triples(&self) -> impl Iterator<Item = (&(usize, usize, usize), &PatternResponse)> {
        self.triples.iter()
    }

    /// All observations — pairs then triples — as (charged positions,
    /// response). This is the family-agnostic view the reconstruction
    /// constraint extractor consumes.
    pub fn patterns(&self) -> impl Iterator<Item = (Vec<usize>, &PatternResponse)> {
        self.pairs.iter().map(|(&(i, j), r)| (vec![i, j], r)).chain(
            self.triples
                .iter()
                .map(|(&(i, j, l), r)| (vec![i, j, l], r)),
        )
    }

    /// The number of recorded patterns (pairs plus triples).
    pub fn pattern_count(&self) -> usize {
        self.pairs.len() + self.triples.len()
    }

    /// The number of pairs that provoke a data-visible miscorrection.
    pub fn miscorrecting_pair_count(&self) -> usize {
        self.pairs
            .iter()
            .filter(|(&(i, j), r)| r.miscorrection(&[i, j]).is_some())
            .count()
    }

    /// The number of triples that provoke a data-visible miscorrection —
    /// the observations that expose a SEC-DED code's columns.
    pub fn miscorrecting_triple_count(&self) -> usize {
        self.triples
            .iter()
            .filter(|(&(i, j, l), r)| r.miscorrection(&[i, j, l]).is_some())
            .count()
    }

    /// The pairwise [`MiscorrectionProfile`] view of this profile (what the
    /// BEEP profiler and HARP-A's pairwise precomputation consume).
    pub fn miscorrection_profile(&self) -> MiscorrectionProfile {
        MiscorrectionProfile::new(
            self.data_bits,
            self.pairs
                .iter()
                .map(|(&(i, j), r)| ((i, j), r.miscorrection(&[i, j])))
                .collect(),
        )
    }

    /// Returns `true` if every recorded observation — post-correction errors
    /// *and* decoder status flag — matches the behaviour of `code`. Partial
    /// profiles (fewer patterns than the full weight-2/3 enumeration) are
    /// judged on what they recorded.
    pub fn is_consistent_with<C: LinearBlockCode + ?Sized>(&self, code: &C) -> bool {
        if code.data_len() != self.data_bits {
            return false;
        }
        self.pairs
            .iter()
            .all(|(&(i, j), r)| PatternResponse::of_code(code, &[i, j]) == *r)
            && self
                .triples
                .iter()
                .all(|(&(i, j, l), r)| PatternResponse::of_code(code, &[i, j, l]) == *r)
    }

    /// Returns `true` if the *post-correction error* part of every recorded
    /// observation matches `code` — i.e. the code is indistinguishable from
    /// the observed chip by normal data reads over the recorded patterns.
    ///
    /// This deliberately ignores the status flag: a detected-uncorrectable
    /// pattern and an invisible parity-bit correction return identical data,
    /// and which of the two a given syndrome produces depends on residual
    /// column freedom that data reads cannot pin down. Reconstruction
    /// ([`crate::reconstruct_code`]) accepts candidates on this criterion,
    /// which is exactly what [`crate::data_visible_equivalent`] certifies
    /// and what the H-aware profilers (BEEP, HARP-A) consume.
    pub fn is_data_visible_consistent_with<C: LinearBlockCode + ?Sized>(&self, code: &C) -> bool {
        if code.data_len() != self.data_bits {
            return false;
        }
        self.pairs.iter().all(|(&(i, j), r)| {
            PatternResponse::of_code(code, &[i, j]).post_errors == r.post_errors
        }) && self.triples.iter().all(|(&(i, j, l), r)| {
            PatternResponse::of_code(code, &[i, j, l]).post_errors == r.post_errors
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    #[test]
    fn ground_truth_profile_covers_all_pairs() {
        let code = HammingCode::random(16, 5).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        assert_eq!(profile.data_bits(), 16);
        assert_eq!(profile.pairs().count(), 16 * 15 / 2);
        assert!(profile.is_consistent_with(&code));
    }

    #[test]
    fn targets_match_direct_syndrome_computation() {
        let code = HammingCode::random(16, 7).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        for i in 0..16 {
            for j in (i + 1)..16 {
                let syndrome = code.column(i) ^ code.column(j);
                let expected = code.position_for_syndrome(&syndrome).filter(|&m| m < 16);
                assert_eq!(profile.miscorrection_target(i, j), expected);
                // Order agnostic lookup.
                assert_eq!(profile.miscorrection_target(j, i), expected);
            }
        }
    }

    #[test]
    fn pairwise_prediction_is_subset_of_full_harp_a_prediction() {
        use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
        let code = HammingCode::random(16, 9).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        let direct = [0usize, 3, 7, 11];
        let pairwise = profile.predict_indirect_from_direct(&direct);
        let full = predict_indirect_from_direct(&code, &direct, FailureDependence::TrueCell);
        for p in &pairwise {
            assert!(
                full.contains(p),
                "pairwise prediction {p} missing from full prediction"
            );
        }
    }

    #[test]
    fn prediction_excludes_direct_bits() {
        let code = HammingCode::random(16, 13).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        let direct = [1usize, 2, 3, 4, 5];
        let predicted = profile.predict_indirect_from_direct(&direct);
        for d in direct {
            assert!(!predicted.contains(&d));
        }
        assert!(profile.predict_indirect_from_direct(&[]).is_empty());
        assert!(profile.predict_indirect_from_direct(&[0]).is_empty());
    }

    #[test]
    fn different_codes_usually_have_different_profiles() {
        let a = MiscorrectionProfile::from_code(&HammingCode::random(16, 1).unwrap());
        let b = MiscorrectionProfile::from_code(&HammingCode::random(16, 2).unwrap());
        assert_ne!(a, b);
    }

    #[test]
    fn miscorrecting_pair_count_is_positive_for_real_codes() {
        // Hamming codes over 16 data bits have many pair sums landing on
        // other data columns.
        let code = HammingCode::random(16, 21).unwrap();
        let profile = MiscorrectionProfile::from_code(&code);
        assert!(profile.miscorrecting_pair_count() > 0);
    }

    #[test]
    #[should_panic(expected = "must be ordered")]
    fn unordered_pairs_are_rejected() {
        let mut pairs = BTreeMap::new();
        pairs.insert((3usize, 1usize), None);
        MiscorrectionProfile::new(8, pairs);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn self_targets_are_rejected() {
        let mut pairs = BTreeMap::new();
        pairs.insert((1usize, 3usize), Some(3usize));
        MiscorrectionProfile::new(8, pairs);
    }

    mod visible {
        use super::*;
        use harp_ecc::ExtendedHammingCode;

        #[test]
        fn covers_every_pair_and_triple() {
            let code = HammingCode::random(8, 4).unwrap();
            let profile = VisibleErrorProfile::from_code(&code);
            assert_eq!(profile.data_bits(), 8);
            assert_eq!(profile.pairs().count(), 8 * 7 / 2);
            assert_eq!(profile.triples().count(), 8 * 7 * 6 / 6);
            assert_eq!(profile.pattern_count(), 28 + 56);
            assert_eq!(profile.patterns().count(), profile.pattern_count());
            assert!(profile.is_consistent_with(&code));
        }

        #[test]
        fn pairwise_view_matches_the_legacy_profile() {
            for seed in [2u64, 11, 0xFE] {
                let code = HammingCode::random(16, seed).unwrap();
                let visible = VisibleErrorProfile::from_code(&code);
                assert_eq!(
                    visible.miscorrection_profile(),
                    MiscorrectionProfile::from_code(&code),
                    "seed {seed}"
                );
            }
        }

        #[test]
        fn secded_pairs_are_all_detected_and_carry_no_miscorrections() {
            let code = ExtendedHammingCode::random(8, 7).unwrap();
            let profile = VisibleErrorProfile::from_code(&code);
            for (&(i, j), response) in profile.pairs() {
                assert_eq!(response.flag, DecodeFlag::Detected, "pair ({i}, {j})");
                assert_eq!(response.post_errors, vec![i, j]);
            }
            assert_eq!(profile.miscorrecting_pair_count(), 0);
            // Weight 3 is where the columns become visible.
            assert!(profile.miscorrecting_triple_count() > 0);
        }

        #[test]
        fn sec_pairs_do_miscorrect_where_secded_detects() {
            let inner = HammingCode::random(8, 7).unwrap();
            let profile = VisibleErrorProfile::from_code(&inner);
            assert!(profile.miscorrecting_pair_count() > 0);
            // The same inner columns, extended: those observations vanish.
            let extended = ExtendedHammingCode::from_hamming(inner);
            assert!(!profile.is_consistent_with(&extended));
        }

        #[test]
        fn consistency_distinguishes_codes() {
            let a = HammingCode::random(16, 31).unwrap();
            let b = HammingCode::random(16, 32).unwrap();
            let profile = VisibleErrorProfile::from_code(&a);
            assert!(profile.is_consistent_with(&a));
            assert!(!profile.is_consistent_with(&b));
            // Wrong dataword length is never consistent.
            let small = HammingCode::random(8, 31).unwrap();
            assert!(!profile.is_consistent_with(&small));
        }

        #[test]
        fn miscorrection_accessor_skips_charged_positions() {
            let response = PatternResponse {
                post_errors: vec![1, 3, 5],
                flag: DecodeFlag::Corrected,
            };
            assert_eq!(response.miscorrection(&[1, 3]), Some(5));
            assert_eq!(response.miscorrection(&[1, 3, 5]), None);
        }

        #[test]
        #[should_panic(expected = "triple (2, 1, 3) invalid")]
        fn unordered_triples_are_rejected() {
            let mut triples = BTreeMap::new();
            triples.insert(
                (2usize, 1usize, 3usize),
                PatternResponse {
                    post_errors: vec![],
                    flag: DecodeFlag::Clean,
                },
            );
            VisibleErrorProfile::new(8, BTreeMap::new(), triples);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn profile_round_trips_through_the_campaign(seed in 0u64..200) {
                // The black-box campaign must always recover exactly the
                // ground-truth profile, whatever the secret code is.
                let secret = HammingCode::random(16, seed).unwrap();
                let recovered = crate::BeerCampaign::new(16).extract_profile(&secret);
                prop_assert_eq!(recovered, MiscorrectionProfile::from_code(&secret));
            }

            #[test]
            fn predictions_are_always_within_the_true_indirect_space(
                seed in 0u64..100,
                direct in proptest::collection::btree_set(0usize..16, 2..6),
            ) {
                use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
                let code = HammingCode::random(16, seed).unwrap();
                let profile = MiscorrectionProfile::from_code(&code);
                let direct: Vec<usize> = direct.into_iter().collect();
                let pairwise = profile.predict_indirect_from_direct(&direct);
                let full =
                    predict_indirect_from_direct(&code, &direct, FailureDependence::TrueCell);
                for p in pairwise {
                    prop_assert!(full.contains(&p));
                }
            }

            #[test]
            fn miscorrection_targets_never_collide_with_their_pair(seed in 0u64..100) {
                let code = HammingCode::random(32, seed).unwrap();
                let profile = MiscorrectionProfile::from_code(&code);
                for ((i, j), target) in profile.pairs() {
                    if let Some(m) = target {
                        prop_assert!(m != i && m != j && *m < 32);
                    }
                }
            }
        }
    }
}
