//! Reconstructing an equivalent parity-check matrix from data-visible
//! observations, generically over the target code family.
//!
//! The true column arrangement of a proprietary on-die ECC code cannot be
//! determined from outside the chip — only its *data-visible* behaviour can.
//! This module finds a concrete systematic code — SEC Hamming or SEC-DED
//! extended Hamming, selected by [`CodeFamily`] — that reproduces the
//! observed behaviour, which is all that BEEP-style pattern crafting and
//! HARP-A-style indirect-error prediction require.
//!
//! The search works on the observation that every data-visible miscorrection
//! is a *linear* statement about the unknown data columns. A charged pattern
//! `S` that miscorrects data bit `m` means the syndrome of `S` equals the
//! column of `m`, i.e. `⊕_{i ∈ S} c_i ⊕ c_m = 0`; a pattern the decoder
//! reports clean means `⊕_{i ∈ S} c_i = 0`. Every row of the unknown parity
//! block must therefore lie in the null space of the relation matrix. The
//! solver computes that null space exactly (GF(2) Gaussian elimination — the
//! role Z3 plays in the original BEER tool) and then searches the residual
//! freedom for an assignment whose complete profile matches the observation,
//! which also enforces the "no data-visible miscorrection" constraints.
//!
//! The family enters the constraint system only through the *known* part of
//! its columns: an extended Hamming code appends the all-ones overall-parity
//! row, so every extended column contributes a fixed `1` there and a linear
//! dependence among extended columns must involve an **even** number of
//! them. That one rule is what makes weight-2 miscorrections infeasible for
//! SEC-DED (`|S ∪ {m}| = 3` is odd) and what the ROADMAP calls the
//! extended-column constraint rows; everything else — relation extraction,
//! null-space solve, residual-freedom search, consistency acceptance — is
//! family-agnostic.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::{
    CodeError, DecodeResult, ExtendedHammingCode, HammingCode, LinearBlockCode, WordLayout,
};
use harp_gf2::{solve::nullspace_of_relations, BitVec, Gf2Matrix, SyndromeKernel};

use crate::profile::{DecodeFlag, MiscorrectionProfile, VisibleErrorProfile};

/// Why reconstruction failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconstructError {
    /// The requested number of parity bits cannot represent the dataword
    /// (fewer parity bits than the target family needs).
    TooFewParityBits {
        /// Requested parity width.
        parity_bits: usize,
        /// Minimum parity width for the profile's dataword length.
        required: usize,
    },
    /// The observations contradict every code in the target family: either a
    /// recorded outcome is structurally impossible (e.g. a weight-2
    /// miscorrection under SEC-DED, whose overall-parity row forces every
    /// linear column dependence to involve an even number of columns), or
    /// the relation null space admits only the all-zero assignment.
    InconsistentProfile,
    /// No consistent assignment was found within the attempt budget. Either
    /// the profile is not realizable with the requested parity width or the
    /// randomized search needs more attempts.
    AttemptsExhausted {
        /// Number of assignments that were tried.
        attempts: usize,
    },
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::TooFewParityBits {
                parity_bits,
                required,
            } => write!(
                f,
                "{parity_bits} parity bits cannot encode the dataword (need at least {required})"
            ),
            ReconstructError::InconsistentProfile => write!(
                f,
                "the observed profile is inconsistent with every code in the target family"
            ),
            ReconstructError::AttemptsExhausted { attempts } => {
                write!(f, "no consistent code found within {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

/// The systematic code family a reconstruction targets.
///
/// This is the dispatch seam of the reverse-engineering layer: the family
/// decides how many parity bits a dataword needs, which linear relations an
/// observation implies (through its known column structure), and how a
/// solved column assignment is materialized into a concrete code. No other
/// part of the search knows which family it is serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeFamily {
    /// Systematic SEC Hamming (`HammingCode`), the paper's configuration.
    Hamming,
    /// Systematic SEC-DED extended Hamming (`ExtendedHammingCode`).
    ExtendedHamming,
}

impl CodeFamily {
    /// Both supported families, in reconstruction-priority order.
    pub const ALL: [CodeFamily; 2] = [CodeFamily::Hamming, CodeFamily::ExtendedHamming];

    /// Minimal number of parity bits a code of this family needs for a
    /// `data_bits`-bit dataword.
    pub fn min_parity_bits(self, data_bits: usize) -> usize {
        let inner = harp_ecc::CodeShape::min_parity_bits(data_bits);
        match self {
            CodeFamily::Hamming => inner,
            CodeFamily::ExtendedHamming => inner + 1,
        }
    }

    /// How many of `parity_bits` total parity bits are *unknown* per data
    /// column (the extended family's overall-parity row is fixed, so its
    /// inner width is one less).
    fn inner_parity_bits(self, parity_bits: usize) -> usize {
        match self {
            CodeFamily::Hamming => parity_bits,
            CodeFamily::ExtendedHamming => parity_bits - 1,
        }
    }

    /// Whether a linear dependence among `count` of this family's columns is
    /// structurally possible. Extended Hamming columns all carry a fixed `1`
    /// in the overall-parity row, so only even-sized dependences exist.
    fn admits_relation(self, count: usize) -> bool {
        match self {
            CodeFamily::Hamming => true,
            CodeFamily::ExtendedHamming => count.is_multiple_of(2),
        }
    }

    /// Extracts the linear relation rows over the `k` unknown data columns
    /// implied by the profile's observations.
    ///
    /// # Errors
    ///
    /// Returns [`ReconstructError::InconsistentProfile`] if any observation
    /// is structurally impossible for this family.
    pub fn relation_rows(
        self,
        profile: &VisibleErrorProfile,
    ) -> Result<Vec<BitVec>, ReconstructError> {
        let k = profile.data_bits();
        let mut rows = Vec::new();
        for (charged, response) in profile.patterns() {
            let indices: Vec<usize> = if let Some(m) = response.miscorrection(&charged) {
                // Syndrome of the charged set equals column m.
                charged.iter().copied().chain([m]).collect()
            } else if response.flag == DecodeFlag::Clean {
                // Zero syndrome: the charged columns themselves cancel.
                charged.clone()
            } else {
                // Detected / invisibly-corrected outcomes are disjunctive
                // ("not any data column"); the consistency acceptance test
                // enforces them instead of the linear system.
                continue;
            };
            if !self.admits_relation(indices.len()) {
                return Err(ReconstructError::InconsistentProfile);
            }
            rows.push(BitVec::from_indices(k, indices));
        }
        Ok(rows)
    }

    /// Generates a uniform-random code of this family for a `data_bits`-bit
    /// dataword, deterministically derived from `seed` — the family-dispatch
    /// twin of `HammingCode::random` / `ExtendedHammingCode::random`, used
    /// wherever an experiment needs a secret code of a parameterized family.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::EmptyDataword`] if `data_bits == 0`.
    pub fn random(self, data_bits: usize, seed: u64) -> Result<ReconstructedCode, CodeError> {
        match self {
            CodeFamily::Hamming => {
                HammingCode::random(data_bits, seed).map(ReconstructedCode::Hamming)
            }
            CodeFamily::ExtendedHamming => {
                ExtendedHammingCode::random(data_bits, seed).map(ReconstructedCode::ExtendedHamming)
            }
        }
    }

    /// Materializes a solved column assignment into a concrete code of this
    /// family.
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's [`CodeError`] for degenerate
    /// assignments (zero / unit / duplicate columns).
    pub fn build(self, data_columns: Vec<BitVec>) -> Result<ReconstructedCode, CodeError> {
        match self {
            CodeFamily::Hamming => {
                HammingCode::from_data_columns(data_columns).map(ReconstructedCode::Hamming)
            }
            CodeFamily::ExtendedHamming => ExtendedHammingCode::from_data_columns(data_columns)
                .map(ReconstructedCode::ExtendedHamming),
        }
    }
}

impl fmt::Display for CodeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeFamily::Hamming => f.write_str("SEC Hamming"),
            CodeFamily::ExtendedHamming => f.write_str("SEC-DED extended Hamming"),
        }
    }
}

/// A code recovered by family-generic reconstruction.
///
/// Implements [`LinearBlockCode`] by delegation, so a recovered code drops
/// into every generic consumer (profilers, `ErrorSpace`, equivalence checks)
/// without the caller matching on the family.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconstructedCode {
    /// A recovered SEC Hamming code.
    Hamming(HammingCode),
    /// A recovered SEC-DED extended Hamming code.
    ExtendedHamming(ExtendedHammingCode),
}

impl ReconstructedCode {
    /// The family this code belongs to.
    pub fn family(&self) -> CodeFamily {
        match self {
            ReconstructedCode::Hamming(_) => CodeFamily::Hamming,
            ReconstructedCode::ExtendedHamming(_) => CodeFamily::ExtendedHamming,
        }
    }

    /// The recovered code as a SEC Hamming code, if that is its family.
    pub fn as_hamming(&self) -> Option<&HammingCode> {
        match self {
            ReconstructedCode::Hamming(code) => Some(code),
            ReconstructedCode::ExtendedHamming(_) => None,
        }
    }

    /// The recovered code as a SEC-DED code, if that is its family.
    pub fn as_extended_hamming(&self) -> Option<&ExtendedHammingCode> {
        match self {
            ReconstructedCode::Hamming(_) => None,
            ReconstructedCode::ExtendedHamming(code) => Some(code),
        }
    }

    fn inner(&self) -> &dyn LinearBlockCode {
        match self {
            ReconstructedCode::Hamming(code) => code,
            ReconstructedCode::ExtendedHamming(code) => code,
        }
    }
}

impl LinearBlockCode for ReconstructedCode {
    fn layout(&self) -> WordLayout {
        self.inner().layout()
    }

    fn correction_capability(&self) -> usize {
        self.inner().correction_capability()
    }

    fn parity_check_matrix(&self) -> &Gf2Matrix {
        self.inner().parity_check_matrix()
    }

    fn parity_block(&self) -> &Gf2Matrix {
        self.inner().parity_block()
    }

    fn syndrome_kernel(&self) -> &SyndromeKernel {
        self.inner().syndrome_kernel()
    }

    fn decode(&self, stored: &BitVec) -> DecodeResult {
        self.inner().decode(stored)
    }

    fn description(&self) -> String {
        self.inner().description()
    }

    fn decode_with_syndrome_into(
        &self,
        stored: &BitVec,
        syndrome_word: u64,
        out: &mut DecodeResult,
    ) {
        self.inner()
            .decode_with_syndrome_into(stored, syndrome_word, out)
    }
}

impl fmt::Display for ReconstructedCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.description())
    }
}

/// The family-agnostic residual-freedom search: every candidate parity block
/// is a random GF(2) mixture of the relation null-space basis, so it
/// satisfies every extracted relation by construction; `accept` performs the
/// family build plus the full-profile consistency test.
fn search_assignment<T>(
    unknowns: usize,
    inner_parity_bits: usize,
    relations: &[BitVec],
    seed: u64,
    max_attempts: usize,
    mut accept: impl FnMut(Vec<BitVec>) -> Option<T>,
) -> Result<T, ReconstructError> {
    let basis = nullspace_of_relations(relations, unknowns);
    if basis.is_empty() {
        return Err(ReconstructError::InconsistentProfile);
    }
    let basis_matrix = Gf2Matrix::from_rows(&basis);
    let dim = basis.len();

    // lint:allow(rng-salt) the seed is this search's API parameter; callers choose the stream
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut attempts = 0;
    while attempts < max_attempts {
        attempts += 1;
        // A random mixing matrix M (inner_parity_bits × dim): the candidate
        // parity block is M · basis, so its rows automatically satisfy every
        // recorded relation.
        let mixing = Gf2Matrix::from_fn(inner_parity_bits, dim, |_, _| rng.gen_bool(0.5));
        let candidate_block = mixing.mul(&basis_matrix);
        let data_columns: Vec<BitVec> = (0..unknowns).map(|i| candidate_block.col(i)).collect();
        // Invalid candidates (duplicate / zero / identity-colliding columns)
        // simply move on to the next assignment.
        if let Some(found) = accept(data_columns) {
            return Ok(found);
        }
    }
    Err(ReconstructError::AttemptsExhausted { attempts })
}

/// Reconstructs a code of the requested [`CodeFamily`] whose data-visible
/// behaviour matches `profile`, using `parity_bits` total parity bits.
///
/// The returned code is *equivalent* to the chip's secret code (identical
/// visible-error profile), not necessarily identical to it — the residual
/// ambiguity is invisible from outside the chip.
///
/// # Errors
///
/// Returns [`ReconstructError::TooFewParityBits`] if the geometry is
/// impossible, [`ReconstructError::InconsistentProfile`] if the observations
/// contradict every code in the family, and
/// [`ReconstructError::AttemptsExhausted`] if the randomized assignment
/// search does not converge within `max_attempts`.
///
/// # Example
///
/// ```
/// use harp_beer::{data_visible_equivalent, reconstruct_code, CodeFamily, VisibleErrorProfile};
/// use harp_ecc::{ExtendedHammingCode, LinearBlockCode};
///
/// // A secret SEC-DED code: every data-bit pair is detected, so only the
/// // weight-3 observations in the profile expose its columns.
/// let secret = ExtendedHammingCode::random(8, 5)?;
/// let profile = VisibleErrorProfile::from_code(&secret);
/// let recovered = reconstruct_code(
///     &profile,
///     CodeFamily::ExtendedHamming,
///     secret.parity_len(),
///     1,
///     20_000,
/// )
/// .expect("reconstruction converges for small codes");
/// assert!(profile.is_data_visible_consistent_with(&recovered));
/// assert!(data_visible_equivalent(&secret, &recovered, 3));
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
pub fn reconstruct_code(
    profile: &VisibleErrorProfile,
    family: CodeFamily,
    parity_bits: usize,
    seed: u64,
    max_attempts: usize,
) -> Result<ReconstructedCode, ReconstructError> {
    let k = profile.data_bits();
    let required = family.min_parity_bits(k);
    if parity_bits < required {
        return Err(ReconstructError::TooFewParityBits {
            parity_bits,
            required,
        });
    }
    let relations = family.relation_rows(profile)?;
    // Acceptance is *data-visible* consistency: the candidate must reproduce
    // the post-correction errors of every recorded pattern, but not the
    // detected-vs-invisibly-corrected flag split — which syndromes land on
    // parity columns is residual freedom that data reads cannot pin down
    // (and exactly the ambiguity `data_visible_equivalent` quotients out).
    search_assignment(
        k,
        family.inner_parity_bits(parity_bits),
        &relations,
        seed,
        max_attempts,
        |data_columns| {
            family
                .build(data_columns)
                .ok()
                .filter(|code| profile.is_data_visible_consistent_with(code))
        },
    )
}

/// Reconstructs a systematic SEC Hamming code whose data-visible behaviour
/// matches a pairwise [`MiscorrectionProfile`], using `parity_bits` parity
/// bits.
///
/// This is the pairs-only specialization of [`reconstruct_code`] kept for
/// the classic BEER workflow (SEC Hamming is the paper's configuration and
/// pairwise miscorrections fully determine it). Reverse-engineering a
/// SEC-DED code needs the richer [`VisibleErrorProfile`] observables —
/// decode flags and weight-3 responses — so it goes through
/// [`reconstruct_code`] with [`CodeFamily::ExtendedHamming`].
///
/// # Errors
///
/// Returns [`ReconstructError::TooFewParityBits`] if the geometry is
/// impossible, [`ReconstructError::InconsistentProfile`] if the recorded
/// miscorrections admit no Hamming code at all, and
/// [`ReconstructError::AttemptsExhausted`] if the randomized assignment
/// search does not converge within `max_attempts`.
///
/// # Example
///
/// ```
/// use harp_beer::{reconstruct_equivalent_code, MiscorrectionProfile};
/// use harp_ecc::{HammingCode, LinearBlockCode};
///
/// let secret = HammingCode::random(8, 3)?;
/// let profile = MiscorrectionProfile::from_code(&secret);
/// let recovered = reconstruct_equivalent_code(&profile, secret.parity_len(), 1, 20_000)
///     .expect("reconstruction converges for small codes");
/// assert!(profile.is_consistent_with(&recovered));
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
pub fn reconstruct_equivalent_code(
    profile: &MiscorrectionProfile,
    parity_bits: usize,
    seed: u64,
    max_attempts: usize,
) -> Result<HammingCode, ReconstructError> {
    let k = profile.data_bits();
    let required = CodeFamily::Hamming.min_parity_bits(k);
    if parity_bits < required {
        return Err(ReconstructError::TooFewParityBits {
            parity_bits,
            required,
        });
    }

    // Linear relations among the unknown data columns: each recorded
    // miscorrection `(i, j) → m` states `c_i ⊕ c_j ⊕ c_m = 0`.
    let mut relations = Vec::new();
    for (&(i, j), &target) in profile.pairs() {
        if let Some(m) = target {
            relations.push(BitVec::from_indices(k, [i, j, m]));
        }
    }
    search_assignment(k, parity_bits, &relations, seed, max_attempts, |columns| {
        HammingCode::from_data_columns(columns)
            .ok()
            .filter(|code| profile.is_consistent_with(code))
    })
}

/// Returns `true` if two codes are indistinguishable from outside the chip
/// for raw error patterns confined to the data bits, up to `max_weight`
/// simultaneous raw errors.
///
/// Weight 1 and 2 agreement is exactly profile agreement; weight 3 covers
/// the combinations BEEP exercises when crafting patterns around an already
/// identified at-risk bit — and is the lowest weight at which a SEC-DED
/// code's columns are visible at all.
///
/// # Panics
///
/// Panics if the codes have different dataword lengths or if `max_weight`
/// is 0 or greater than 3.
pub fn data_visible_equivalent<A, B>(a: &A, b: &B, max_weight: usize) -> bool
where
    A: LinearBlockCode + ?Sized,
    B: LinearBlockCode + ?Sized,
{
    assert_eq!(a.data_len(), b.data_len(), "dataword lengths differ");
    assert!((1..=3).contains(&max_weight), "max_weight must be 1..=3");
    let k = a.data_len();
    fn visible<C: LinearBlockCode + ?Sized>(code: &C, positions: &[usize]) -> Vec<usize> {
        let data = BitVec::zeros(code.data_len());
        let error = BitVec::from_indices(code.codeword_len(), positions.iter().copied());
        code.encode_corrupt_decode(&data, &error)
            .post_correction_errors(&data)
    }
    let mut stack: Vec<Vec<usize>> = (0..k).map(|i| vec![i]).collect();
    while let Some(positions) = stack.pop() {
        if visible(a, &positions) != visible(b, &positions) {
            return false;
        }
        if positions.len() < max_weight {
            let last = *positions.last().expect("non-empty subset");
            for next in (last + 1)..k {
                let mut extended = positions.clone();
                extended.push(next);
                stack.push(extended);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_recovers_an_equivalent_small_code() {
        for seed in 0..4u64 {
            let secret = HammingCode::random(8, seed).unwrap();
            let profile = MiscorrectionProfile::from_code(&secret);
            let recovered =
                reconstruct_equivalent_code(&profile, secret.parity_len(), seed, 50_000)
                    .expect("reconstruction converges for 8-bit datawords");
            assert!(profile.is_consistent_with(&recovered), "seed {seed}");
            assert!(
                data_visible_equivalent(&secret, &recovered, 2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reconstruction_recovers_an_equivalent_16_bit_code() {
        let secret = HammingCode::random(16, 11).unwrap();
        let profile = MiscorrectionProfile::from_code(&secret);
        let recovered = reconstruct_equivalent_code(&profile, secret.parity_len(), 7, 200_000)
            .expect("reconstruction converges for 16-bit datawords");
        assert!(profile.is_consistent_with(&recovered));
        // Pair-level equivalence is what the profile guarantees.
        assert!(data_visible_equivalent(&secret, &recovered, 2));
    }

    #[test]
    fn family_generic_reconstruction_recovers_a_secded_code() {
        for seed in 0..3u64 {
            let secret = ExtendedHammingCode::random(8, seed).unwrap();
            let profile = VisibleErrorProfile::from_code(&secret);
            let recovered = reconstruct_code(
                &profile,
                CodeFamily::ExtendedHamming,
                secret.parity_len(),
                seed,
                50_000,
            )
            .expect("reconstruction converges for 8-bit SEC-DED datawords");
            assert_eq!(recovered.family(), CodeFamily::ExtendedHamming);
            assert!(recovered.as_extended_hamming().is_some());
            assert!(
                profile.is_data_visible_consistent_with(&recovered),
                "seed {seed}"
            );
            assert!(
                data_visible_equivalent(&secret, &recovered, 3),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn family_generic_reconstruction_recovers_a_hamming_code() {
        let secret = HammingCode::random(8, 6).unwrap();
        let profile = VisibleErrorProfile::from_code(&secret);
        let recovered = reconstruct_code(
            &profile,
            CodeFamily::Hamming,
            secret.parity_len(),
            2,
            50_000,
        )
        .expect("reconstruction converges for 8-bit datawords");
        assert_eq!(recovered.family(), CodeFamily::Hamming);
        assert!(recovered.as_hamming().is_some());
        assert!(data_visible_equivalent(&secret, &recovered, 3));
    }

    #[test]
    fn a_sec_profile_is_inconsistent_with_the_extended_family() {
        // A Hamming code with at least one pairwise miscorrection cannot be
        // explained by any SEC-DED code: the extended family's overall-parity
        // row makes weight-2 miscorrections structurally impossible.
        let secret = HammingCode::random(8, 7).unwrap();
        let profile = VisibleErrorProfile::from_code(&secret);
        assert!(profile.miscorrecting_pair_count() > 0);
        assert_eq!(
            reconstruct_code(
                &profile,
                CodeFamily::ExtendedHamming,
                CodeFamily::ExtendedHamming.min_parity_bits(8),
                0,
                1_000,
            ),
            Err(ReconstructError::InconsistentProfile)
        );
    }

    #[test]
    fn contradictory_relations_are_reported_as_inconsistent() {
        // Four weight-3 relation rows over four data bits with full rank:
        // the null space is trivial, so no code can satisfy the recorded
        // miscorrections and the solver reports the profile itself as the
        // problem (not a spent attempt budget).
        let mut pairs = std::collections::BTreeMap::new();
        pairs.insert((0usize, 1usize), Some(2usize));
        pairs.insert((1usize, 3usize), Some(0usize));
        pairs.insert((2usize, 3usize), Some(0usize));
        pairs.insert((1usize, 2usize), Some(3usize));
        let profile = MiscorrectionProfile::new(4, pairs);
        assert_eq!(
            reconstruct_equivalent_code(&profile, 3, 0, 10_000),
            Err(ReconstructError::InconsistentProfile)
        );
    }

    #[test]
    fn too_few_parity_bits_is_reported() {
        let secret = HammingCode::random(16, 0).unwrap();
        let profile = MiscorrectionProfile::from_code(&secret);
        assert!(matches!(
            reconstruct_equivalent_code(&profile, 2, 0, 10),
            Err(ReconstructError::TooFewParityBits { required, .. }) if required > 2
        ));
        // The extended family needs one more parity bit than plain Hamming.
        let visible = VisibleErrorProfile::from_code(&secret);
        assert!(matches!(
            reconstruct_code(&visible, CodeFamily::ExtendedHamming, 5, 0, 10),
            Err(ReconstructError::TooFewParityBits { required: 6, .. })
        ));
    }

    #[test]
    fn attempt_budget_is_respected() {
        let secret = HammingCode::random(16, 3).unwrap();
        let profile = MiscorrectionProfile::from_code(&secret);
        // One attempt is (almost surely) not enough; the error reports it.
        match reconstruct_equivalent_code(&profile, secret.parity_len(), 12345, 1) {
            Err(ReconstructError::AttemptsExhausted { attempts }) => assert_eq!(attempts, 1),
            Ok(code) => assert!(profile.is_consistent_with(&code)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn a_code_is_equivalent_to_itself() {
        let code = HammingCode::random(16, 9).unwrap();
        assert!(data_visible_equivalent(&code, &code, 3));
    }

    #[test]
    fn different_codes_are_usually_not_equivalent() {
        let a = HammingCode::random(16, 1).unwrap();
        let b = HammingCode::random(16, 2).unwrap();
        assert!(!data_visible_equivalent(&a, &b, 2));
    }

    #[test]
    fn reconstructed_code_delegates_the_trait() {
        let secret = ExtendedHammingCode::random(8, 2).unwrap();
        let wrapped = ReconstructedCode::ExtendedHamming(secret.clone());
        assert_eq!(wrapped.layout(), secret.layout());
        assert_eq!(wrapped.description(), secret.description());
        assert_eq!(wrapped.to_string(), secret.to_string());
        assert_eq!(wrapped.correction_capability(), 1);
        assert_eq!(wrapped.parity_check_matrix(), secret.parity_check_matrix());
        assert_eq!(wrapped.parity_block(), secret.parity_block());
        let data = BitVec::from_u64(8, 0xA5);
        let mut stored = wrapped.encode(&data);
        assert_eq!(stored, secret.encode(&data));
        stored.flip(3);
        assert_eq!(wrapped.decode(&stored), secret.decode(&stored));
        assert_eq!(
            CodeFamily::ALL,
            [CodeFamily::Hamming, CodeFamily::ExtendedHamming]
        );
        assert_eq!(CodeFamily::Hamming.to_string(), "SEC Hamming");
        assert_eq!(
            CodeFamily::ExtendedHamming.to_string(),
            "SEC-DED extended Hamming"
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let err = ReconstructError::TooFewParityBits {
            parity_bits: 3,
            required: 5,
        };
        assert!(err.to_string().contains("at least 5"));
        let err = ReconstructError::AttemptsExhausted { attempts: 7 };
        assert!(err.to_string().contains("7 attempts"));
        let err = ReconstructError::InconsistentProfile;
        assert!(err.to_string().contains("inconsistent"));
        assert!(err.to_string().contains("family"));
    }

    #[test]
    #[should_panic(expected = "dataword lengths differ")]
    fn equivalence_check_rejects_mismatched_codes() {
        let a = HammingCode::random(8, 1).unwrap();
        let b = HammingCode::random(16, 1).unwrap();
        data_visible_equivalent(&a, &b, 2);
    }
}
