//! Reconstructing an equivalent parity-check matrix from a miscorrection
//! profile.
//!
//! The true column arrangement of a proprietary on-die ECC code cannot be
//! determined from outside the chip — only its *data-visible* behaviour can.
//! This module finds a concrete systematic SEC Hamming code that reproduces
//! the observed behaviour, which is all that BEEP-style pattern crafting and
//! HARP-A-style indirect-error prediction require.
//!
//! The search works on the observation that each recorded miscorrection
//! `(i, j) → m` is a *linear* statement about the unknown data columns:
//! `c_i ⊕ c_j ⊕ c_m = 0`. Every row of the unknown parity block must
//! therefore lie in the null space of the relation matrix. The solver
//! computes that null space exactly (GF(2) Gaussian elimination — the role
//! Z3 plays in the original BEER tool) and then searches the residual
//! freedom for an assignment whose complete profile matches the observation,
//! which also enforces the "no data-visible miscorrection" constraints.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::{HammingCode, LinearBlockCode};
use harp_gf2::{solve::row_echelon, BitVec, Gf2Matrix};

use crate::profile::MiscorrectionProfile;

/// Why reconstruction failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconstructError {
    /// The requested number of parity bits cannot represent the dataword
    /// (fewer parity bits than a Hamming code needs).
    TooFewParityBits {
        /// Requested parity width.
        parity_bits: usize,
        /// Minimum parity width for the profile's dataword length.
        required: usize,
    },
    /// No consistent assignment was found within the attempt budget. Either
    /// the profile is not realizable with the requested parity width or the
    /// randomized search needs more attempts.
    AttemptsExhausted {
        /// Number of assignments that were tried.
        attempts: usize,
    },
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::TooFewParityBits {
                parity_bits,
                required,
            } => write!(
                f,
                "{parity_bits} parity bits cannot encode the dataword (need at least {required})"
            ),
            ReconstructError::AttemptsExhausted { attempts } => {
                write!(f, "no consistent code found within {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

/// Reconstructs a systematic SEC Hamming code whose data-visible behaviour
/// matches `profile`, using `parity_bits` parity bits.
///
/// The returned code is *equivalent* to the chip's secret code (identical
/// miscorrection profile), not necessarily identical to it — the residual
/// ambiguity is invisible from outside the chip.
///
/// # Errors
///
/// Returns [`ReconstructError::TooFewParityBits`] if the geometry is
/// impossible and [`ReconstructError::AttemptsExhausted`] if the randomized
/// assignment search does not converge within `max_attempts`.
///
/// # Example
///
/// ```
/// use harp_beer::{reconstruct_equivalent_code, MiscorrectionProfile};
/// use harp_ecc::{HammingCode, LinearBlockCode};
///
/// let secret = HammingCode::random(8, 3)?;
/// let profile = MiscorrectionProfile::from_code(&secret);
/// let recovered = reconstruct_equivalent_code(&profile, secret.parity_len(), 1, 20_000)
///     .expect("reconstruction converges for small codes");
/// assert!(profile.is_consistent_with(&recovered));
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
pub fn reconstruct_equivalent_code(
    profile: &MiscorrectionProfile,
    parity_bits: usize,
    seed: u64,
    max_attempts: usize,
) -> Result<HammingCode, ReconstructError> {
    let k = profile.data_bits();
    let required = harp_ecc::CodeShape::min_parity_bits(k);
    if parity_bits < required {
        return Err(ReconstructError::TooFewParityBits {
            parity_bits,
            required,
        });
    }

    // Linear relations among the unknown data columns.
    let mut relation_rows = Vec::new();
    for (&(i, j), &target) in profile.pairs() {
        if let Some(m) = target {
            relation_rows.push(BitVec::from_indices(k, [i, j, m]));
        }
    }
    // Every row of the parity block must lie in the null space of the
    // relation matrix (an empty relation set leaves the full space free).
    let basis = if relation_rows.is_empty() {
        (0..k)
            .map(|i| BitVec::from_indices(k, [i]))
            .collect::<Vec<_>>()
    } else {
        row_echelon(&Gf2Matrix::from_rows(&relation_rows)).nullspace()
    };
    if basis.is_empty() {
        return Err(ReconstructError::AttemptsExhausted { attempts: 0 });
    }
    let basis_matrix = Gf2Matrix::from_rows(&basis);
    let dim = basis.len();

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut attempts = 0;
    while attempts < max_attempts {
        attempts += 1;
        // A random mixing matrix M (parity_bits × dim): the candidate parity
        // block is M · basis, so its rows automatically satisfy every
        // recorded miscorrection relation.
        let mixing = Gf2Matrix::from_fn(parity_bits, dim, |_, _| rng.gen_bool(0.5));
        let candidate_block = mixing.mul(&basis_matrix);
        let data_columns: Vec<BitVec> = (0..k).map(|i| candidate_block.col(i)).collect();
        // Invalid candidates (duplicate / zero / identity-colliding columns)
        // simply move on to the next assignment.
        if let Ok(code) = HammingCode::from_data_columns(data_columns) {
            if profile.is_consistent_with(&code) {
                return Ok(code);
            }
        }
    }
    Err(ReconstructError::AttemptsExhausted { attempts })
}

/// Returns `true` if two codes are indistinguishable from outside the chip
/// for raw error patterns confined to the data bits, up to `max_weight`
/// simultaneous raw errors.
///
/// Weight 1 and 2 agreement is exactly profile agreement; weight 3 covers
/// the combinations BEEP exercises when crafting patterns around an already
/// identified at-risk bit.
///
/// # Panics
///
/// Panics if the codes have different dataword lengths or if `max_weight`
/// is 0 or greater than 3.
pub fn data_visible_equivalent<A, B>(a: &A, b: &B, max_weight: usize) -> bool
where
    A: LinearBlockCode + ?Sized,
    B: LinearBlockCode + ?Sized,
{
    assert_eq!(a.data_len(), b.data_len(), "dataword lengths differ");
    assert!((1..=3).contains(&max_weight), "max_weight must be 1..=3");
    let k = a.data_len();
    fn visible<C: LinearBlockCode + ?Sized>(code: &C, positions: &[usize]) -> Vec<usize> {
        let data = BitVec::zeros(code.data_len());
        let error = BitVec::from_indices(code.codeword_len(), positions.iter().copied());
        code.encode_corrupt_decode(&data, &error)
            .post_correction_errors(&data)
    }
    let mut stack: Vec<Vec<usize>> = (0..k).map(|i| vec![i]).collect();
    while let Some(positions) = stack.pop() {
        if visible(a, &positions) != visible(b, &positions) {
            return false;
        }
        if positions.len() < max_weight {
            let last = *positions.last().expect("non-empty subset");
            for next in (last + 1)..k {
                let mut extended = positions.clone();
                extended.push(next);
                stack.push(extended);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_recovers_an_equivalent_small_code() {
        for seed in 0..4u64 {
            let secret = HammingCode::random(8, seed).unwrap();
            let profile = MiscorrectionProfile::from_code(&secret);
            let recovered =
                reconstruct_equivalent_code(&profile, secret.parity_len(), seed, 50_000)
                    .expect("reconstruction converges for 8-bit datawords");
            assert!(profile.is_consistent_with(&recovered), "seed {seed}");
            assert!(
                data_visible_equivalent(&secret, &recovered, 2),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn reconstruction_recovers_an_equivalent_16_bit_code() {
        let secret = HammingCode::random(16, 11).unwrap();
        let profile = MiscorrectionProfile::from_code(&secret);
        let recovered = reconstruct_equivalent_code(&profile, secret.parity_len(), 7, 200_000)
            .expect("reconstruction converges for 16-bit datawords");
        assert!(profile.is_consistent_with(&recovered));
        // Pair-level equivalence is what the profile guarantees.
        assert!(data_visible_equivalent(&secret, &recovered, 2));
    }

    #[test]
    fn too_few_parity_bits_is_reported() {
        let secret = HammingCode::random(16, 0).unwrap();
        let profile = MiscorrectionProfile::from_code(&secret);
        assert!(matches!(
            reconstruct_equivalent_code(&profile, 2, 0, 10),
            Err(ReconstructError::TooFewParityBits { required, .. }) if required > 2
        ));
    }

    #[test]
    fn attempt_budget_is_respected() {
        let secret = HammingCode::random(16, 3).unwrap();
        let profile = MiscorrectionProfile::from_code(&secret);
        // One attempt is (almost surely) not enough; the error reports it.
        match reconstruct_equivalent_code(&profile, secret.parity_len(), 12345, 1) {
            Err(ReconstructError::AttemptsExhausted { attempts }) => assert_eq!(attempts, 1),
            Ok(code) => assert!(profile.is_consistent_with(&code)),
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn a_code_is_equivalent_to_itself() {
        let code = HammingCode::random(16, 9).unwrap();
        assert!(data_visible_equivalent(&code, &code, 3));
    }

    #[test]
    fn different_codes_are_usually_not_equivalent() {
        let a = HammingCode::random(16, 1).unwrap();
        let b = HammingCode::random(16, 2).unwrap();
        assert!(!data_visible_equivalent(&a, &b, 2));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = ReconstructError::TooFewParityBits {
            parity_bits: 3,
            required: 5,
        };
        assert!(err.to_string().contains("at least 5"));
        let err = ReconstructError::AttemptsExhausted { attempts: 7 };
        assert!(err.to_string().contains("7 attempts"));
    }

    #[test]
    #[should_panic(expected = "dataword lengths differ")]
    fn equivalence_check_rejects_mismatched_codes() {
        let a = HammingCode::random(8, 1).unwrap();
        let b = HammingCode::random(16, 1).unwrap();
        data_visible_equivalent(&a, &b, 2);
    }
}
