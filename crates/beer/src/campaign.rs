//! The BEER test campaign: recovering the miscorrection profile from a
//! black-box memory chip.
//!
//! BEER exploits the data-dependence of DRAM data-retention errors: a true
//! cell can only fail while it stores a '1'. By programming a data pattern
//! that charges exactly two data bits and testing beyond the refresh margin
//! (so that the charged cells fail), the experimenter induces a *known*
//! pair of raw errors inside the ECC word without any visibility into the
//! chip. The on-die ECC decoder then either miscorrects a third data bit
//! (observable), miscorrects a parity bit (invisible and harmless), or
//! detects the error without locating it. Collecting the observation for
//! every pair yields the [`MiscorrectionProfile`].
//!
//! The campaign drives an actual [`harp_memsim::MemoryChip`] through its
//! normal (non-bypass) read path, exactly as an experimenter without HARP's
//! chip modification would.
//!
//! **Modelling note.** The campaign assumes a test condition under which the
//! two targeted (charged) data cells fail during the test window while the
//! chip's parity cells survive it. The original BEER methodology does not
//! need this assumption — it feeds the resulting ambiguity about charged
//! parity-cell failures to a SAT solver — but the artefact it recovers is the
//! same miscorrection profile. DESIGN.md §2 records the substitution.

use std::collections::BTreeMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};

use crate::profile::MiscorrectionProfile;

/// A pair-charged reverse-engineering campaign over a chip with `data_bits`
/// visible data bits per ECC word.
///
/// # Example
///
/// ```
/// use harp_beer::BeerCampaign;
/// use harp_ecc::HammingCode;
///
/// let secret = HammingCode::random(16, 4)?;
/// let profile = BeerCampaign::new(16).extract_profile(&secret);
/// assert!(profile.is_consistent_with(&secret));
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeerCampaign {
    data_bits: usize,
    /// Number of read trials per pattern. The pair-charged procedure is
    /// deterministic when the test condition guarantees charged-cell
    /// failure, so a single trial suffices; more trials model a cautious
    /// experimenter re-reading each pattern.
    trials_per_pattern: usize,
}

impl BeerCampaign {
    /// Creates a campaign for ECC words with `data_bits` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero.
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "data_bits must be nonzero");
        Self {
            data_bits,
            trials_per_pattern: 1,
        }
    }

    /// Sets the number of read trials per pattern (defaults to 1).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn with_trials_per_pattern(mut self, trials: usize) -> Self {
        assert!(trials > 0, "at least one trial per pattern is required");
        self.trials_per_pattern = trials;
        self
    }

    /// The dataword length this campaign targets.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// The number of test patterns the campaign programs (one per unordered
    /// pair of data bits).
    pub fn pattern_count(&self) -> usize {
        self.data_bits * (self.data_bits - 1) / 2
    }

    /// Runs the campaign against a chip that uses the given (secret) code,
    /// constructing the black-box chip internally.
    ///
    /// The internally built chip holds one ECC word per unordered data-bit
    /// pair, all programmed up front, so the whole campaign executes as
    /// [`MemoryChip::read_burst`] scrub passes (one per trial) through the
    /// batched syndrome kernel instead of `pattern_count()` scalar reads.
    /// The recovered profile is identical to the word-at-a-time reference
    /// path ([`BeerCampaign::extract_profile_from_chip`]): the pair-charged
    /// procedure is deterministic under the test condition.
    ///
    /// # Panics
    ///
    /// Panics if the code's dataword length does not match the campaign.
    pub fn extract_profile<C: LinearBlockCode + Clone>(&self, code: &C) -> MiscorrectionProfile {
        assert_eq!(
            code.data_len(),
            self.data_bits,
            "campaign sized for {} data bits, code has {}",
            self.data_bits,
            code.data_len()
        );
        let mut pairs = BTreeMap::new();
        if self.pattern_count() == 0 {
            return MiscorrectionProfile::new(self.data_bits, pairs);
        }

        // Program every pair pattern into its own word.
        let mut chip = MemoryChip::new(code.clone(), self.pattern_count());
        let mut pair_of_word = Vec::with_capacity(self.pattern_count());
        for i in 0..self.data_bits {
            for j in (i + 1)..self.data_bits {
                let word = pair_of_word.len();
                chip.set_fault_model(word, FaultModel::uniform(&[i, j], 1.0));
                chip.write(word, &BitVec::from_indices(self.data_bits, [i, j]));
                pair_of_word.push((i, j));
            }
        }

        // One scrub-pass burst per trial over the whole pattern population.
        let mut rng = ChaCha8Rng::seed_from_u64(0xBEE2);
        let mut scratch = BurstScratch::new();
        for _ in 0..self.trials_per_pattern {
            let observations = chip.read_burst(0..chip.num_words(), &mut rng, &mut scratch);
            for (&(i, j), observation) in pair_of_word.iter().zip(observations) {
                let post = observation.post_correction_errors();
                // A data-visible miscorrection shows up as a third
                // post-correction error position beyond the pair itself.
                if let Some(&extra) = post.iter().find(|&&p| p != i && p != j) {
                    pairs.insert((i, j), Some(extra));
                } else {
                    pairs.entry((i, j)).or_insert(None);
                }
            }
        }
        MiscorrectionProfile::new(self.data_bits, pairs)
    }

    /// Runs the campaign against an existing chip through its normal read
    /// path (no ECC bypass, no knowledge of the stored code). This is the
    /// word-at-a-time reference implementation of the campaign; the
    /// chip-constructing [`BeerCampaign::extract_profile`] batches the same
    /// procedure through the burst read path.
    ///
    /// The chip's word 0 is used as the test location; its fault model is
    /// overwritten to emulate testing beyond the refresh margin, where every
    /// charged cell in the targeted pair fails.
    ///
    /// # Panics
    ///
    /// Panics if the chip's dataword length does not match the campaign.
    pub fn extract_profile_from_chip<C: LinearBlockCode>(
        &self,
        chip: &mut MemoryChip<C>,
        seed: u64,
    ) -> MiscorrectionProfile {
        assert_eq!(
            chip.code().data_len(),
            self.data_bits,
            "campaign sized for {} data bits, chip has {}",
            self.data_bits,
            chip.code().data_len()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pairs = BTreeMap::new();
        for i in 0..self.data_bits {
            for j in (i + 1)..self.data_bits {
                // Test beyond the refresh margin: the two charged data cells
                // are guaranteed to fail; every other cell stores '0' and,
                // being a true cell, cannot fail.
                chip.set_fault_model(0, FaultModel::uniform(&[i, j], 1.0));
                let pattern = BitVec::from_indices(self.data_bits, [i, j]);
                chip.write(0, &pattern);

                let mut target = None;
                for _ in 0..self.trials_per_pattern {
                    let observation = chip.read(0, &mut rng);
                    let post = observation.post_correction_errors();
                    // A data-visible miscorrection shows up as a third
                    // post-correction error position beyond the pair itself.
                    if let Some(&extra) = post.iter().find(|&&p| p != i && p != j) {
                        target = Some(extra);
                    }
                }
                pairs.insert((i, j), target);
            }
        }
        MiscorrectionProfile::new(self.data_bits, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    #[test]
    fn recovered_profile_matches_ground_truth_for_random_codes() {
        for seed in 0..8u64 {
            let code = HammingCode::random(16, seed).unwrap();
            let profile = BeerCampaign::new(16).extract_profile(&code);
            assert_eq!(
                profile,
                MiscorrectionProfile::from_code(&code),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn recovered_profile_matches_ground_truth_for_a_71_64_code() {
        let code = HammingCode::random(64, 0xA11CE).unwrap();
        let profile = BeerCampaign::new(64).extract_profile(&code);
        assert_eq!(profile, MiscorrectionProfile::from_code(&code));
    }

    #[test]
    fn batched_campaign_matches_the_scalar_reference_path() {
        for seed in [3u64, 0xBEEF] {
            let code = HammingCode::random(16, seed).unwrap();
            let batched = BeerCampaign::new(16).extract_profile(&code);
            let mut chip = MemoryChip::new(code.clone(), 1);
            let scalar = BeerCampaign::new(16).extract_profile_from_chip(&mut chip, 0xBEE2);
            assert_eq!(batched, scalar, "seed {seed}");
        }
    }

    #[test]
    fn campaign_works_against_an_externally_supplied_chip() {
        let code = HammingCode::random(16, 77).unwrap();
        let mut chip = MemoryChip::new(code.clone(), 4);
        let profile = BeerCampaign::new(16)
            .with_trials_per_pattern(3)
            .extract_profile_from_chip(&mut chip, 1);
        assert!(profile.is_consistent_with(&code));
    }

    #[test]
    fn pattern_count_is_quadratic_in_data_bits() {
        assert_eq!(BeerCampaign::new(4).pattern_count(), 6);
        assert_eq!(BeerCampaign::new(16).pattern_count(), 120);
        assert_eq!(BeerCampaign::new(64).pattern_count(), 2016);
        assert_eq!(BeerCampaign::new(64).data_bits(), 64);
    }

    #[test]
    #[should_panic(expected = "campaign sized for")]
    fn mismatched_code_size_is_rejected() {
        let code = HammingCode::random(32, 0).unwrap();
        BeerCampaign::new(16).extract_profile(&code);
    }

    #[test]
    #[should_panic(expected = "data_bits must be nonzero")]
    fn zero_sized_campaign_is_rejected() {
        BeerCampaign::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_are_rejected() {
        BeerCampaign::new(8).with_trials_per_pattern(0);
    }
}
