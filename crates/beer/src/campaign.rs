//! The BEER test campaign: recovering the miscorrection profile from a
//! black-box memory chip.
//!
//! BEER exploits the data-dependence of DRAM data-retention errors: a true
//! cell can only fail while it stores a '1'. By programming a data pattern
//! that charges exactly two data bits and testing beyond the refresh margin
//! (so that the charged cells fail), the experimenter induces a *known*
//! pair of raw errors inside the ECC word without any visibility into the
//! chip. The on-die ECC decoder then either miscorrects a third data bit
//! (observable), miscorrects a parity bit (invisible and harmless), or
//! detects the error without locating it. Collecting the observation for
//! every pair yields the [`MiscorrectionProfile`].
//!
//! The campaign drives an actual [`harp_memsim::MemoryChip`] through its
//! normal (non-bypass) read path, exactly as an experimenter without HARP's
//! chip modification would. All trials of a round are read as one burst, so
//! the campaign rides the chip's bit-sliced syndrome pass and clean-word
//! mask fast path for free.
//!
//! **Modelling note.** The campaign assumes a test condition under which the
//! two targeted (charged) data cells fail during the test window while the
//! chip's parity cells survive it. The original BEER methodology does not
//! need this assumption — it feeds the resulting ambiguity about charged
//! parity-cell failures to a SAT solver — but the artefact it recovers is the
//! same miscorrection profile. DESIGN.md §2 records the substitution.

use std::collections::BTreeMap;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip, ReadObservation};

use crate::profile::{DecodeFlag, MiscorrectionProfile, PatternResponse, VisibleErrorProfile};
use crate::reconstruct::{reconstruct_code, CodeFamily, ReconstructError, ReconstructedCode};

/// A pair-charged reverse-engineering campaign over a chip with `data_bits`
/// visible data bits per ECC word.
///
/// # Example
///
/// ```
/// use harp_beer::BeerCampaign;
/// use harp_ecc::HammingCode;
///
/// let secret = HammingCode::random(16, 4)?;
/// let profile = BeerCampaign::new(16).extract_profile(&secret);
/// assert!(profile.is_consistent_with(&secret));
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeerCampaign {
    data_bits: usize,
    /// Number of read trials per pattern. The pair-charged procedure is
    /// deterministic when the test condition guarantees charged-cell
    /// failure, so a single trial suffices; more trials model a cautious
    /// experimenter re-reading each pattern.
    trials_per_pattern: usize,
}

impl BeerCampaign {
    /// Creates a campaign for ECC words with `data_bits` data bits.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits` is zero.
    pub fn new(data_bits: usize) -> Self {
        assert!(data_bits > 0, "data_bits must be nonzero");
        Self {
            data_bits,
            trials_per_pattern: 1,
        }
    }

    /// Sets the number of read trials per pattern (defaults to 1).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero.
    pub fn with_trials_per_pattern(mut self, trials: usize) -> Self {
        assert!(trials > 0, "at least one trial per pattern is required");
        self.trials_per_pattern = trials;
        self
    }

    /// The dataword length this campaign targets.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// The number of test patterns the campaign programs (one per unordered
    /// pair of data bits).
    pub fn pattern_count(&self) -> usize {
        self.data_bits * (self.data_bits - 1) / 2
    }

    /// Runs the campaign against a chip that uses the given (secret) code,
    /// constructing the black-box chip internally.
    ///
    /// The internally built chip holds one ECC word per unordered data-bit
    /// pair, all programmed up front, so the whole campaign executes as
    /// [`MemoryChip::read_burst`] scrub passes (one per trial) through the
    /// batched syndrome kernel instead of `pattern_count()` scalar reads.
    /// The recovered profile is identical to the word-at-a-time reference
    /// path ([`BeerCampaign::extract_profile_from_chip`]): the pair-charged
    /// procedure is deterministic under the test condition.
    ///
    /// # Panics
    ///
    /// Panics if the code's dataword length does not match the campaign.
    pub fn extract_profile<C: LinearBlockCode + Clone>(&self, code: &C) -> MiscorrectionProfile {
        let patterns: Vec<Vec<usize>> = (0..self.data_bits)
            .flat_map(|i| ((i + 1)..self.data_bits).map(move |j| vec![i, j]))
            .collect();
        let mut pairs = BTreeMap::new();
        self.run_pattern_campaign(code, &patterns, 0xBEE2, |charged, observation| {
            let (i, j) = (charged[0], charged[1]);
            let post = observation.post_correction_errors();
            // A data-visible miscorrection shows up as a third
            // post-correction error position beyond the pair itself.
            if let Some(&extra) = post.iter().find(|&&p| p != i && p != j) {
                pairs.insert((i, j), Some(extra));
            } else {
                pairs.entry((i, j)).or_insert(None);
            }
        });
        MiscorrectionProfile::new(self.data_bits, pairs)
    }

    /// The shared engine of both campaign variants: programs one ECC word
    /// per charged pattern (the charged cells — true cells storing '1'
    /// tested beyond the refresh margin — fail during the test window,
    /// everything else stores '0' and cannot fail), then executes one
    /// [`MemoryChip::read_burst`] scrub pass per trial and feeds every
    /// observation to `record`.
    ///
    /// # Panics
    ///
    /// Panics if the code's dataword length does not match the campaign.
    fn run_pattern_campaign<C, F>(
        &self,
        code: &C,
        patterns: &[Vec<usize>],
        seed: u64,
        mut record: F,
    ) where
        C: LinearBlockCode + Clone,
        F: FnMut(&[usize], &ReadObservation),
    {
        assert_eq!(
            code.data_len(),
            self.data_bits,
            "campaign sized for {} data bits, code has {}",
            self.data_bits,
            code.data_len()
        );
        if patterns.is_empty() {
            return;
        }
        let mut chip = MemoryChip::new(code.clone(), patterns.len());
        for (word, charged) in patterns.iter().enumerate() {
            chip.set_fault_model(word, FaultModel::uniform(charged, 1.0));
            chip.write(
                word,
                &BitVec::from_indices(self.data_bits, charged.iter().copied()),
            );
        }
        // lint:allow(rng-salt) the seed is this campaign's API parameter; callers choose the stream
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut scratch = BurstScratch::new();
        for _ in 0..self.trials_per_pattern {
            let observations = chip.read_burst(0..chip.num_words(), &mut rng, &mut scratch);
            for (charged, observation) in patterns.iter().zip(observations) {
                record(charged, observation);
            }
        }
    }

    /// The number of test patterns the extended (cross-family) campaign
    /// programs: one per unordered pair *and* one per unordered triple of
    /// data bits. Triples are the lowest-weight patterns that expose a
    /// SEC-DED code's columns, so the extended campaign always includes
    /// them.
    pub fn visible_pattern_count(&self) -> usize {
        let k = self.data_bits;
        // `saturating_sub` keeps the triple term at zero for k < 3 (the
        // (k - 1) factor already zeroes it for k = 2).
        k * (k - 1) / 2 + k * (k - 1) * k.saturating_sub(2) / 6
    }

    /// Runs the extended campaign against a chip that uses the given
    /// (secret) code, recording the full [`VisibleErrorProfile`]: the
    /// post-correction error positions *and* the decoder's status flag for
    /// every weight-2 and weight-3 charged data pattern.
    ///
    /// Like [`BeerCampaign::extract_profile`], the internally built chip
    /// holds one ECC word per pattern, all programmed up front, and the
    /// whole campaign executes as [`MemoryChip::read_burst`] scrub passes
    /// (one per trial) through the batched syndrome kernel.
    ///
    /// # Panics
    ///
    /// Panics if the code's dataword length does not match the campaign.
    pub fn extract_visible_profile<C: LinearBlockCode + Clone>(
        &self,
        code: &C,
    ) -> VisibleErrorProfile {
        let k = self.data_bits;
        let mut patterns: Vec<Vec<usize>> = Vec::with_capacity(self.visible_pattern_count());
        for i in 0..k {
            for j in (i + 1)..k {
                patterns.push(vec![i, j]);
                for l in (j + 1)..k {
                    patterns.push(vec![i, j, l]);
                }
            }
        }
        let mut pairs = BTreeMap::new();
        let mut triples = BTreeMap::new();
        self.run_pattern_campaign(code, &patterns, 0xBEE3, |charged, observation| {
            let response = PatternResponse {
                post_errors: observation.post_correction_errors(),
                flag: DecodeFlag::from_outcome(&observation.decode_result().outcome),
            };
            // Mirror `extract_profile`'s cautious-experimenter semantics
            // across trials: a miscorrection observed in ANY trial is
            // kept; otherwise the first trial's response stands.
            let informative = response.miscorrection(charged).is_some();
            match *charged {
                [i, j] => {
                    if informative {
                        pairs.insert((i, j), response);
                    } else {
                        pairs.entry((i, j)).or_insert(response);
                    }
                }
                [i, j, l] => {
                    if informative {
                        triples.insert((i, j, l), response);
                    } else {
                        triples.entry((i, j, l)).or_insert(response);
                    }
                }
                _ => unreachable!("patterns are pairs or triples"),
            }
        });
        VisibleErrorProfile::new(k, pairs, triples)
    }

    /// Drives the full reverse-engineering pipeline end to end for the given
    /// target family: extended pattern campaign → [`VisibleErrorProfile`] →
    /// family-dispatched [`reconstruct_code`] at the family's minimal parity
    /// width.
    ///
    /// # Errors
    ///
    /// Propagates [`ReconstructError`] from the reconstruction search; in
    /// particular, asking for a family the observations contradict (e.g.
    /// SEC-DED for a chip whose pairs visibly miscorrect) returns
    /// [`ReconstructError::InconsistentProfile`].
    ///
    /// # Panics
    ///
    /// Panics if the code's dataword length does not match the campaign.
    pub fn reverse_engineer<C: LinearBlockCode + Clone>(
        &self,
        code: &C,
        family: CodeFamily,
        seed: u64,
        max_attempts: usize,
    ) -> Result<ReconstructedCode, ReconstructError> {
        let profile = self.extract_visible_profile(code);
        reconstruct_code(
            &profile,
            family,
            family.min_parity_bits(self.data_bits),
            seed,
            max_attempts,
        )
    }

    /// Runs the campaign against an existing chip through its normal read
    /// path (no ECC bypass, no knowledge of the stored code). This is the
    /// word-at-a-time reference implementation of the campaign; the
    /// chip-constructing [`BeerCampaign::extract_profile`] batches the same
    /// procedure through the burst read path.
    ///
    /// The chip's word 0 is used as the test location; its fault model is
    /// overwritten to emulate testing beyond the refresh margin, where every
    /// charged cell in the targeted pair fails.
    ///
    /// # Panics
    ///
    /// Panics if the chip's dataword length does not match the campaign.
    pub fn extract_profile_from_chip<C: LinearBlockCode>(
        &self,
        chip: &mut MemoryChip<C>,
        seed: u64,
    ) -> MiscorrectionProfile {
        assert_eq!(
            chip.code().data_len(),
            self.data_bits,
            "campaign sized for {} data bits, chip has {}",
            self.data_bits,
            chip.code().data_len()
        );
        // lint:allow(rng-salt) the seed is this campaign's API parameter; callers choose the stream
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pairs = BTreeMap::new();
        for i in 0..self.data_bits {
            for j in (i + 1)..self.data_bits {
                // Test beyond the refresh margin: the two charged data cells
                // are guaranteed to fail; every other cell stores '0' and,
                // being a true cell, cannot fail.
                chip.set_fault_model(0, FaultModel::uniform(&[i, j], 1.0));
                let pattern = BitVec::from_indices(self.data_bits, [i, j]);
                chip.write(0, &pattern);

                let mut target = None;
                for _ in 0..self.trials_per_pattern {
                    let observation = chip.read(0, &mut rng);
                    let post = observation.post_correction_errors();
                    // A data-visible miscorrection shows up as a third
                    // post-correction error position beyond the pair itself.
                    if let Some(&extra) = post.iter().find(|&&p| p != i && p != j) {
                        target = Some(extra);
                    }
                }
                pairs.insert((i, j), target);
            }
        }
        MiscorrectionProfile::new(self.data_bits, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    #[test]
    fn recovered_profile_matches_ground_truth_for_random_codes() {
        for seed in 0..8u64 {
            let code = HammingCode::random(16, seed).unwrap();
            let profile = BeerCampaign::new(16).extract_profile(&code);
            assert_eq!(
                profile,
                MiscorrectionProfile::from_code(&code),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn recovered_profile_matches_ground_truth_for_a_71_64_code() {
        let code = HammingCode::random(64, 0xA11CE).unwrap();
        let profile = BeerCampaign::new(64).extract_profile(&code);
        assert_eq!(profile, MiscorrectionProfile::from_code(&code));
    }

    #[test]
    fn batched_campaign_matches_the_scalar_reference_path() {
        for seed in [3u64, 0xBEEF] {
            let code = HammingCode::random(16, seed).unwrap();
            let batched = BeerCampaign::new(16).extract_profile(&code);
            let mut chip = MemoryChip::new(code.clone(), 1);
            let scalar = BeerCampaign::new(16).extract_profile_from_chip(&mut chip, 0xBEE2);
            assert_eq!(batched, scalar, "seed {seed}");
        }
    }

    #[test]
    fn campaign_works_against_an_externally_supplied_chip() {
        let code = HammingCode::random(16, 77).unwrap();
        let mut chip = MemoryChip::new(code.clone(), 4);
        let profile = BeerCampaign::new(16)
            .with_trials_per_pattern(3)
            .extract_profile_from_chip(&mut chip, 1);
        assert!(profile.is_consistent_with(&code));
    }

    #[test]
    fn pattern_count_is_quadratic_in_data_bits() {
        assert_eq!(BeerCampaign::new(4).pattern_count(), 6);
        assert_eq!(BeerCampaign::new(16).pattern_count(), 120);
        assert_eq!(BeerCampaign::new(64).pattern_count(), 2016);
        assert_eq!(BeerCampaign::new(64).data_bits(), 64);
        // The extended campaign adds the triples.
        assert_eq!(BeerCampaign::new(4).visible_pattern_count(), 6 + 4);
        assert_eq!(BeerCampaign::new(16).visible_pattern_count(), 120 + 560);
        // Degenerate datawords have no pairs or triples (and no underflow).
        assert_eq!(BeerCampaign::new(1).visible_pattern_count(), 0);
        assert_eq!(BeerCampaign::new(2).visible_pattern_count(), 1);
    }

    #[test]
    fn visible_profile_campaign_matches_ground_truth_across_families() {
        use crate::profile::VisibleErrorProfile;
        use harp_ecc::ExtendedHammingCode;

        let campaign = BeerCampaign::new(8).with_trials_per_pattern(2);
        let hamming = HammingCode::random(8, 5).unwrap();
        assert_eq!(
            campaign.extract_visible_profile(&hamming),
            VisibleErrorProfile::from_code(&hamming)
        );
        let secded = ExtendedHammingCode::random(8, 5).unwrap();
        assert_eq!(
            campaign.extract_visible_profile(&secded),
            VisibleErrorProfile::from_code(&secded)
        );
    }

    #[test]
    fn reverse_engineering_round_trips_both_families() {
        use crate::reconstruct::{data_visible_equivalent, CodeFamily};
        use harp_ecc::ExtendedHammingCode;

        let campaign = BeerCampaign::new(8);
        let hamming = HammingCode::random(8, 21).unwrap();
        let recovered = campaign
            .reverse_engineer(&hamming, CodeFamily::Hamming, 1, 50_000)
            .expect("Hamming reconstruction converges");
        assert!(data_visible_equivalent(&hamming, &recovered, 3));

        let secded = ExtendedHammingCode::random(8, 21).unwrap();
        let recovered = campaign
            .reverse_engineer(&secded, CodeFamily::ExtendedHamming, 1, 50_000)
            .expect("SEC-DED reconstruction converges");
        assert!(data_visible_equivalent(&secded, &recovered, 3));
    }

    #[test]
    #[should_panic(expected = "campaign sized for")]
    fn mismatched_code_size_is_rejected() {
        let code = HammingCode::random(32, 0).unwrap();
        BeerCampaign::new(16).extract_profile(&code);
    }

    #[test]
    #[should_panic(expected = "data_bits must be nonzero")]
    fn zero_sized_campaign_is_rejected() {
        BeerCampaign::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_are_rejected() {
        BeerCampaign::new(8).with_trials_per_pattern(0);
    }
}
