//! BEER-style reverse engineering of on-die ECC for the HARP reproduction.
//!
//! The HARP paper's BEEP baseline and HARP-A variant both assume the on-die
//! ECC parity-check matrix is known, "potentially provided through
//! manufacturer support, datasheet information, or previously-proposed
//! reverse engineering techniques" — the latter being BEER (Patel et al.,
//! MICRO 2020). This crate implements that prerequisite so the repository is
//! self-contained: it recovers what BEEP actually consumes from a black-box
//! memory chip, without any bypass path or manufacturer documentation.
//!
//! Two artefacts are recovered:
//!
//! * the [`MiscorrectionProfile`] — for every pair of data-bit positions, the
//!   data-bit position (if any) that the on-die ECC decoder miscorrects when
//!   exactly that pair of raw errors occurs. This is the *data-visible*
//!   signature of the parity-check matrix and is exactly the information the
//!   BEEP profiler and HARP-A's indirect-error precomputation need;
//! * its family-generic superset, the [`VisibleErrorProfile`] — decoder
//!   status flags and weight-3 pattern responses in addition to the pairwise
//!   miscorrections. A SEC-DED code detects every data-bit pair (the
//!   pairwise profile carries zero information about it), so its columns are
//!   only visible through these richer observables;
//! * optionally, a concrete *equivalent* systematic parity-check matrix
//!   reconstructed from the profile ([`reconstruct`]): a code that produces
//!   the same data-visible decode behaviour even though the true proprietary
//!   column arrangement remains unknowable from outside the chip. The search
//!   is dispatched over a [`CodeFamily`] — SEC Hamming
//!   ([`reconstruct_equivalent_code`], pairs suffice) or SEC-DED extended
//!   Hamming ([`reconstruct_code`], which consumes the richer profile).
//!
//! The original BEER work hands the consistency problem to the Z3 SAT
//! solver. Here the same constraints are expressed as GF(2) linear equations
//! over the unknown columns plus distinctness side conditions, solved exactly
//! (see DESIGN.md §2 for the substitution argument).
//!
//! # Example
//!
//! ```
//! use harp_beer::{BeerCampaign, MiscorrectionProfile};
//! use harp_ecc::HammingCode;
//!
//! // A black-box chip with an unknown (to us) on-die ECC code.
//! let secret_code = HammingCode::random(16, 99)?;
//!
//! // Run the pair-charged test campaign against the chip.
//! let campaign = BeerCampaign::new(16);
//! let profile = campaign.extract_profile(&secret_code);
//!
//! // The recovered profile matches the ground truth computed from H.
//! assert_eq!(profile, MiscorrectionProfile::from_code(&secret_code));
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod campaign;
pub mod profile;
pub mod reconstruct;

pub use campaign::BeerCampaign;
pub use profile::{DecodeFlag, MiscorrectionProfile, PatternResponse, VisibleErrorProfile};
pub use reconstruct::{
    data_visible_equivalent, reconstruct_code, reconstruct_equivalent_code, CodeFamily,
    ReconstructError, ReconstructedCode,
};
