//! Memory data patterns used during active profiling.
//!
//! Active profilers program the memory with data patterns designed to
//! maximize the chance of observing errors (§6.2 of the paper). The paper
//! evaluates three patterns (§7.1.2):
//!
//! * **charged** — all cells store '1' (0xFF), the worst case for true-cell
//!   data-retention errors;
//! * **checkered** — alternating '0'/'1', inverted every round;
//! * **random** — a fresh uniform-random word every two rounds, inverted on
//!   the second of the two rounds.

use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

/// Salt mixing the pair index into the schedule seed for
/// [`DataPattern::Random`] words (the 64-bit golden-ratio multiplier, so
/// consecutive pairs land on well-separated streams).
const RANDOM_PAIR_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A memory data-pattern family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPattern {
    /// All cells charged ('1' everywhere, i.e. 0xFF bytes).
    Charged,
    /// All cells discharged ('0' everywhere).
    Discharged,
    /// Alternating '0101…', inverted every profiling round.
    Checkered,
    /// Uniform-random data, changed every two rounds and inverted on the
    /// second round of each pair (the paper's best-performing pattern).
    Random,
}

impl DataPattern {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            DataPattern::Charged => "charged",
            DataPattern::Discharged => "discharged",
            DataPattern::Checkered => "checkered",
            DataPattern::Random => "random",
        }
    }

    /// All patterns evaluated in the paper.
    pub fn evaluated() -> [DataPattern; 3] {
        [
            DataPattern::Random,
            DataPattern::Charged,
            DataPattern::Checkered,
        ]
    }
}

impl std::fmt::Display for DataPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generates the per-round dataword for a given pattern family, following the
/// paper's inversion schedule.
///
/// # Example
///
/// ```
/// use harp_memsim::pattern::{DataPattern, PatternSchedule};
///
/// let mut schedule = PatternSchedule::new(DataPattern::Checkered, 8, 42);
/// let round0 = schedule.dataword_for_round(0);
/// let round1 = schedule.dataword_for_round(1);
/// assert_eq!(round0.not(), round1); // inverted every round
/// ```
#[derive(Debug, Clone)]
pub struct PatternSchedule {
    pattern: DataPattern,
    data_bits: usize,
    seed: u64,
    /// Memoized `(pair, base word)` for [`DataPattern::Random`]: campaigns
    /// query rounds in order, so each pair's base is derived once and its
    /// second (inverted) round reuses it instead of re-keying the RNG.
    cached: Option<(usize, BitVec)>,
}

impl PatternSchedule {
    /// Creates a schedule producing `data_bits`-bit datawords. The `seed`
    /// only matters for [`DataPattern::Random`].
    pub fn new(pattern: DataPattern, data_bits: usize, seed: u64) -> Self {
        Self {
            pattern,
            data_bits,
            seed,
            cached: None,
        }
    }

    /// The pattern family this schedule draws from.
    pub fn pattern(&self) -> DataPattern {
        self.pattern
    }

    /// Number of data bits per word.
    pub fn data_bits(&self) -> usize {
        self.data_bits
    }

    /// The dataword programmed in profiling round `round` (0-based).
    ///
    /// The schedule is deterministic and order-independent: calling this
    /// twice with the same round returns the same word (whatever was queried
    /// in between), so independent profilers can be evaluated against
    /// identical inputs (a fairness requirement from §7.1.2). The `&mut`
    /// receiver only updates the internal memo for [`DataPattern::Random`]
    /// pairs.
    pub fn dataword_for_round(&mut self, round: usize) -> BitVec {
        match self.pattern {
            DataPattern::Charged => BitVec::ones(self.data_bits),
            DataPattern::Discharged => BitVec::zeros(self.data_bits),
            DataPattern::Checkered => {
                let base = BitVec::from_indices(
                    self.data_bits,
                    (0..self.data_bits).filter(|i| i % 2 == 0),
                );
                if round.is_multiple_of(2) {
                    base
                } else {
                    base.not()
                }
            }
            DataPattern::Random => {
                let pair = round / 2;
                let base = self.random_base_for_pair(pair);
                if round.is_multiple_of(2) {
                    base.clone()
                } else {
                    base.not()
                }
            }
        }
    }

    /// The base word of one [`DataPattern::Random`] pair, memoized: the
    /// second round of a pair (and any repeated query) reuses the cached
    /// word instead of re-keying the RNG. Datawords are requested once per
    /// word per profiling round, making this the hottest pattern path of a
    /// campaign.
    fn random_base_for_pair(&mut self, pair: usize) -> &BitVec {
        let hit = matches!(&self.cached, Some((p, _)) if *p == pair);
        if !hit {
            // Derive the word for this pair deterministically from the
            // schedule seed so rounds can be queried in any order, drawing
            // 64 uniform bits per RNG word instead of one full RNG word per
            // bit.
            let mut rng =
                ChaCha8Rng::seed_from_u64(self.seed ^ (pair as u64).wrapping_mul(RANDOM_PAIR_SALT));
            let base = if self.data_bits <= 64 {
                BitVec::from_u64(self.data_bits, rng.next_u64())
            } else {
                let mut drawn = 0u64;
                (0..self.data_bits)
                    .map(|bit| {
                        if bit % 64 == 0 {
                            drawn = rng.next_u64();
                        }
                        (drawn >> (bit % 64)) & 1 == 1
                    })
                    .collect()
            };
            self.cached = Some((pair, base));
        }
        &self.cached.as_ref().expect("memo populated above").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charged_pattern_is_all_ones_every_round() {
        let mut schedule = PatternSchedule::new(DataPattern::Charged, 64, 0);
        for round in 0..8 {
            assert_eq!(schedule.dataword_for_round(round), BitVec::ones(64));
        }
    }

    #[test]
    fn discharged_pattern_is_all_zeros() {
        let mut schedule = PatternSchedule::new(DataPattern::Discharged, 16, 0);
        assert!(schedule.dataword_for_round(3).is_zero());
    }

    #[test]
    fn checkered_pattern_alternates_and_inverts() {
        let mut schedule = PatternSchedule::new(DataPattern::Checkered, 8, 0);
        let even = schedule.dataword_for_round(0);
        let odd = schedule.dataword_for_round(1);
        assert_eq!(even.to_string(), "10101010");
        assert_eq!(odd.to_string(), "01010101");
        assert_eq!(schedule.dataword_for_round(2), even);
        assert_eq!(even.not(), odd);
    }

    #[test]
    fn random_pattern_changes_every_two_rounds_and_inverts_within_a_pair() {
        let mut schedule = PatternSchedule::new(DataPattern::Random, 64, 123);
        let r0 = schedule.dataword_for_round(0);
        let r1 = schedule.dataword_for_round(1);
        let r2 = schedule.dataword_for_round(2);
        assert_eq!(r0.not(), r1, "round 1 must be the inverse of round 0");
        assert_ne!(r0, r2, "a fresh random word must be drawn for round 2");
        // Together a pair covers every cell with a charged value.
        assert_eq!((&r0 | &r1).count_ones(), 64);
    }

    #[test]
    fn random_pattern_is_deterministic_per_seed() {
        let mut a = PatternSchedule::new(DataPattern::Random, 32, 7);
        let mut b = PatternSchedule::new(DataPattern::Random, 32, 7);
        let mut c = PatternSchedule::new(DataPattern::Random, 32, 8);
        for round in 0..10 {
            assert_eq!(a.dataword_for_round(round), b.dataword_for_round(round));
        }
        assert_ne!(a.dataword_for_round(0), c.dataword_for_round(0));
    }

    #[test]
    fn random_pattern_queries_are_order_independent() {
        let mut schedule = PatternSchedule::new(DataPattern::Random, 32, 99);
        let r5_first = schedule.dataword_for_round(5);
        let _ = schedule.dataword_for_round(0);
        assert_eq!(schedule.dataword_for_round(5), r5_first);
    }

    #[test]
    fn pattern_names_and_display() {
        assert_eq!(DataPattern::Random.name(), "random");
        assert_eq!(DataPattern::Charged.to_string(), "charged");
        assert_eq!(DataPattern::evaluated().len(), 3);
    }

    #[test]
    fn accessors_report_configuration() {
        let mut schedule = PatternSchedule::new(DataPattern::Checkered, 128, 5);
        assert_eq!(schedule.pattern(), DataPattern::Checkered);
        assert_eq!(schedule.data_bits(), 128);
        assert_eq!(schedule.dataword_for_round(0).len(), 128);
    }
}
