//! Richer data-retention fault models.
//!
//! The basic evaluations inject a fixed number of at-risk bits with a single
//! per-bit error probability. Real DRAM retention behaviour is messier; two
//! refinements from the literature the paper builds on are modelled here:
//!
//! * **Normally distributed per-bit error probabilities** — REAPER (Patel et
//!   al., ISCA 2017), cited in §3.1 of the HARP paper, experimentally finds
//!   that per-bit failure probabilities follow a normal distribution whose
//!   parameters depend on the chip and operating conditions.
//!   [`NormalRetentionSampler`] reproduces that model.
//! * **Variable retention time (VRT)** — cells that switch between a leaky
//!   and a non-leaky state at random (§2.4 "low-probability errors"). The
//!   paper leaves such errors to reactive profiling; [`VrtCell`] provides a
//!   two-state Markov model so that behaviour can be exercised in tests and
//!   extensions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::analysis::FailureDependence;

use crate::fault::{AtRiskBit, FaultModel};

/// Samples fault models whose at-risk bits have normally distributed per-bit
/// error probabilities (clamped to `[0, 1]`), following the REAPER model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalRetentionSampler {
    /// Probability that any given cell is at risk at all.
    pub rber: f64,
    /// Mean of the per-bit failure probability distribution.
    pub mean: f64,
    /// Standard deviation of the per-bit failure probability distribution.
    pub std_dev: f64,
}

impl NormalRetentionSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `rber` or `mean` are outside `[0, 1]`, or `std_dev` is
    /// negative.
    pub fn new(rber: f64, mean: f64, std_dev: f64) -> Self {
        assert!((0.0..=1.0).contains(&rber), "rber {rber} outside [0, 1]");
        assert!((0.0..=1.0).contains(&mean), "mean {mean} outside [0, 1]");
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        Self {
            rber,
            mean,
            std_dev,
        }
    }

    /// Draws one normally distributed per-bit probability (Box–Muller,
    /// clamped to `[0, 1]`).
    pub fn sample_probability<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let standard_normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean + self.std_dev * standard_normal).clamp(0.0, 1.0)
    }

    /// Samples the fault model of one `codeword_bits`-long ECC word.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_memsim::retention::NormalRetentionSampler;
    /// use rand::SeedableRng;
    ///
    /// let sampler = NormalRetentionSampler::new(0.1, 0.5, 0.2);
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    /// let model = sampler.sample_word(71, &mut rng);
    /// for bit in model.at_risk_bits() {
    ///     assert!((0.0..=1.0).contains(&bit.probability));
    /// }
    /// ```
    pub fn sample_word<R: Rng + ?Sized>(&self, codeword_bits: usize, rng: &mut R) -> FaultModel {
        let mut at_risk = Vec::new();
        for position in 0..codeword_bits {
            if rng.gen_bool(self.rber) {
                let probability = self.sample_probability(rng);
                at_risk.push(AtRiskBit::new(position, probability));
            }
        }
        FaultModel::new(at_risk, FailureDependence::TrueCell)
    }
}

/// A two-state variable-retention-time (VRT) cell: it toggles between a
/// *leaky* state (fails with `leaky_probability` when charged) and a
/// *retentive* state (never fails), switching state with a small probability
/// on every access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VrtCell {
    /// Codeword position of the cell.
    pub position: usize,
    /// Per-access failure probability while in the leaky state.
    pub leaky_probability: f64,
    /// Per-access probability of toggling between states.
    pub toggle_probability: f64,
    /// Whether the cell is currently leaky.
    pub leaky: bool,
}

impl VrtCell {
    /// Creates a VRT cell that starts in the retentive (non-leaky) state.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(position: usize, leaky_probability: f64, toggle_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&leaky_probability),
            "leaky probability outside [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&toggle_probability),
            "toggle probability outside [0, 1]"
        );
        Self {
            position,
            leaky_probability,
            toggle_probability,
            leaky: false,
        }
    }

    /// Advances the cell by one access: possibly toggles its state and
    /// returns `true` if the cell fails on this access (given that it is
    /// charged).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if rng.gen_bool(self.toggle_probability) {
            self.leaky = !self.leaky;
        }
        self.leaky && rng.gen_bool(self.leaky_probability)
    }

    /// The cell's current behaviour expressed as an [`AtRiskBit`] (for
    /// integration with [`FaultModel`]-based tooling).
    pub fn as_at_risk_bit(&self) -> AtRiskBit {
        AtRiskBit::new(
            self.position,
            if self.leaky {
                self.leaky_probability
            } else {
                0.0
            },
        )
    }
}

/// A time-varying fault process for one ECC word: a set of always-at-risk
/// bits (the population active profiling targets) plus a set of VRT cells
/// whose at-risk behaviour comes and goes during runtime (the population the
/// paper leaves to reactive profiling, §2.4).
///
/// # Example
///
/// ```
/// use harp_memsim::{FaultModel, retention::{VrtCell, VrtFaultProcess}};
/// use harp_gf2::BitVec;
/// use rand::SeedableRng;
///
/// let mut process = VrtFaultProcess::new(
///     FaultModel::uniform(&[3], 1.0),
///     vec![VrtCell::new(9, 1.0, 0.1)],
/// );
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let errors = process.sample_errors(&BitVec::ones(16), &mut rng);
/// // The static at-risk bit fails deterministically; the VRT cell only
/// // fails while it happens to be in its leaky state.
/// assert!(errors.get(3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VrtFaultProcess {
    static_faults: FaultModel,
    vrt_cells: Vec<VrtCell>,
}

impl VrtFaultProcess {
    /// Creates a process from a static fault model and a set of VRT cells.
    pub fn new(static_faults: FaultModel, vrt_cells: Vec<VrtCell>) -> Self {
        Self {
            static_faults,
            vrt_cells,
        }
    }

    /// The static (always-at-risk) part of the process.
    pub fn static_faults(&self) -> &FaultModel {
        &self.static_faults
    }

    /// The VRT cells of the process.
    pub fn vrt_cells(&self) -> &[VrtCell] {
        &self.vrt_cells
    }

    /// Codeword positions of the VRT cells (the bits only reactive profiling
    /// can hope to identify).
    pub fn vrt_positions(&self) -> Vec<usize> {
        self.vrt_cells.iter().map(|cell| cell.position).collect()
    }

    /// Advances every VRT cell by one access and samples the raw error
    /// pattern for a word currently storing `stored` (codeword bits).
    ///
    /// Static at-risk bits follow their data-dependent Bernoulli model; VRT
    /// cells fail only while leaky *and* charged.
    pub fn sample_errors<R: Rng + ?Sized>(
        &mut self,
        stored: &harp_gf2::BitVec,
        rng: &mut R,
    ) -> harp_gf2::BitVec {
        let mut errors = self.static_faults.sample_errors(stored, rng);
        for cell in &mut self.vrt_cells {
            let fails = cell.step(rng);
            if fails && cell.position < stored.len() && stored.get(cell.position) {
                errors.set(cell.position, true);
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn vrt_process_combines_static_and_vrt_failures() {
        let mut process = VrtFaultProcess::new(
            FaultModel::uniform(&[3], 1.0),
            vec![VrtCell::new(9, 1.0, 0.5)],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let stored = harp_gf2::BitVec::ones(16);
        let mut vrt_failures = 0;
        for _ in 0..200 {
            let errors = process.sample_errors(&stored, &mut rng);
            assert!(errors.get(3), "static bit always fails when charged");
            if errors.get(9) {
                vrt_failures += 1;
            }
        }
        assert!(vrt_failures > 10, "VRT bit fails intermittently");
        assert!(vrt_failures < 200, "VRT bit does not fail on every access");
        assert_eq!(process.vrt_positions(), vec![9]);
        assert_eq!(process.static_faults().at_risk_positions(), vec![3]);
        assert_eq!(process.vrt_cells().len(), 1);
    }

    #[test]
    fn vrt_cells_respect_data_dependence() {
        // A VRT cell storing '0' cannot fail (true-cell behaviour).
        let mut process = VrtFaultProcess::new(FaultModel::none(), vec![VrtCell::new(2, 1.0, 1.0)]);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let stored = harp_gf2::BitVec::zeros(8);
        for _ in 0..50 {
            assert!(process.sample_errors(&stored, &mut rng).is_zero());
        }
    }

    #[test]
    fn normal_sampler_probabilities_follow_the_configured_distribution() {
        let sampler = NormalRetentionSampler::new(1.0, 0.5, 0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sampler.sample_probability(&mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let variance =
            samples.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "empirical mean {mean}");
        assert!(
            (variance.sqrt() - 0.1).abs() < 0.01,
            "empirical std dev {}",
            variance.sqrt()
        );
        assert!(samples.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn normal_sampler_clamps_extreme_draws() {
        let sampler = NormalRetentionSampler::new(1.0, 0.9, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..1000 {
            let p = sampler.sample_probability(&mut rng);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn normal_sampler_word_density_tracks_rber() {
        let sampler = NormalRetentionSampler::new(0.2, 0.5, 0.2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let words = 1000;
        let total: usize = (0..words)
            .map(|_| sampler.sample_word(71, &mut rng).at_risk_bits().len())
            .sum();
        let density = total as f64 / (words * 71) as f64;
        assert!((density - 0.2).abs() < 0.02, "density {density}");
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn normal_sampler_rejects_invalid_mean() {
        NormalRetentionSampler::new(0.5, 1.5, 0.1);
    }

    #[test]
    fn vrt_cell_never_fails_while_retentive() {
        let mut cell = VrtCell::new(3, 1.0, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!cell.step(&mut rng));
        }
        assert_eq!(cell.as_at_risk_bit().probability, 0.0);
    }

    #[test]
    fn vrt_cell_fails_intermittently_once_toggling() {
        let mut cell = VrtCell::new(3, 1.0, 0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let failures = (0..5000).filter(|_| cell.step(&mut rng)).count();
        // The cell spends roughly half its time leaky in steady state, so the
        // failure count is large but well below 100%.
        assert!(failures > 500, "failures {failures}");
        assert!(failures < 4500, "failures {failures}");
    }

    #[test]
    fn vrt_cell_exposes_current_state_as_at_risk_bit() {
        let mut cell = VrtCell::new(9, 0.75, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let _ = cell.step(&mut rng); // toggles to leaky with probability 1
        assert!(cell.leaky);
        let bit = cell.as_at_risk_bit();
        assert_eq!(bit.position, 9);
        assert_eq!(bit.probability, 0.75);
    }
}
