//! The paper's error model (§2.4): independent, data-dependent Bernoulli
//! errors in individual memory cells.
//!
//! Each *at-risk* cell has its own per-access error probability. A true-cell
//! can only fail when it stores a '1' (charged); this data dependence is what
//! ties pre-correction error patterns to the data pattern written during a
//! profiling round and makes worst-case pattern design hard under on-die ECC
//! (challenge 3, §4.3).

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::analysis::FailureDependence;
use harp_gf2::BitVec;

/// A single at-risk cell within an ECC word.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtRiskBit {
    /// Codeword position of the cell (data or parity bit).
    pub position: usize,
    /// Per-access probability that the cell fails when its data-dependence
    /// condition is met.
    pub probability: f64,
}

impl AtRiskBit {
    /// Creates an at-risk bit.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1]`.
    pub fn new(position: usize, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability {probability} outside [0, 1]"
        );
        Self {
            position,
            probability,
        }
    }
}

/// The fault model of one ECC word: which cells are at risk, how likely they
/// are to fail, and how their failure depends on the stored data.
///
/// # Example
///
/// ```
/// use harp_memsim::fault::FaultModel;
/// use harp_gf2::BitVec;
/// use rand::SeedableRng;
///
/// // Two at-risk cells that always fail when charged.
/// let model = FaultModel::uniform(&[0, 5], 1.0);
/// let stored = BitVec::from_indices(8, [0, 1, 2]); // bit 5 stores '0'
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let errors = model.sample_errors(&stored, &mut rng);
/// assert_eq!(errors.iter_ones().collect::<Vec<_>>(), vec![0]); // only the charged cell fails
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    at_risk: Vec<AtRiskBit>,
    dependence: FailureDependence,
}

impl FaultModel {
    /// A fault model with no at-risk bits (an error-free word).
    pub fn none() -> Self {
        Self {
            at_risk: Vec::new(),
            dependence: FailureDependence::TrueCell,
        }
    }

    /// Creates a true-cell fault model where every listed position fails with
    /// the same probability.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn uniform(positions: &[usize], probability: f64) -> Self {
        Self::new(
            positions
                .iter()
                .map(|&p| AtRiskBit::new(p, probability))
                .collect(),
            FailureDependence::TrueCell,
        )
    }

    /// Creates a fault model from explicit at-risk bits and a data-dependence
    /// behaviour.
    pub fn new(at_risk: Vec<AtRiskBit>, dependence: FailureDependence) -> Self {
        Self {
            at_risk,
            dependence,
        }
    }

    /// The at-risk bits of this word.
    pub fn at_risk_bits(&self) -> &[AtRiskBit] {
        &self.at_risk
    }

    /// The at-risk codeword positions of this word.
    pub fn at_risk_positions(&self) -> Vec<usize> {
        self.at_risk.iter().map(|b| b.position).collect()
    }

    /// The data-dependence behaviour of the at-risk cells.
    pub fn dependence(&self) -> FailureDependence {
        self.dependence
    }

    /// Returns `true` if the word has no at-risk cells.
    pub fn is_error_free(&self) -> bool {
        self.at_risk.is_empty()
    }

    /// Samples a raw (pre-correction) error pattern for one access, given the
    /// codeword value currently stored in the cells.
    ///
    /// A cell can only fail if its stored value satisfies the data-dependence
    /// condition (e.g. a true-cell must store '1'); if it does, it fails with
    /// its configured Bernoulli probability, independently of all other cells.
    ///
    /// # Panics
    ///
    /// Panics if an at-risk position lies outside the stored codeword.
    pub fn sample_errors<R: Rng + ?Sized>(&self, stored: &BitVec, rng: &mut R) -> BitVec {
        let mut errors = BitVec::zeros(stored.len());
        self.sample_errors_into(stored, rng, &mut errors);
        errors
    }

    /// Samples a raw error pattern as [`FaultModel::sample_errors`] does, but
    /// writes it into `out` (reusing its buffer) instead of allocating a new
    /// `BitVec`. Consumes exactly the same RNG draws as `sample_errors`, so
    /// the two paths stay stream-for-stream interchangeable — the burst read
    /// path relies on this.
    ///
    /// # Panics
    ///
    /// Panics if an at-risk position lies outside the stored codeword.
    pub fn sample_errors_into<R: Rng + ?Sized>(
        &self,
        stored: &BitVec,
        rng: &mut R,
        out: &mut BitVec,
    ) {
        out.reset(stored.len());
        for bit in &self.at_risk {
            assert!(
                bit.position < stored.len(),
                "at-risk position {} outside codeword of {} bits",
                bit.position,
                stored.len()
            );
            let eligible = match self.dependence.required_value() {
                Some(required) => stored.get(bit.position) == required,
                None => true,
            };
            if eligible && rng.gen_bool(bit.probability) {
                out.set(bit.position, true);
            }
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Samples data-retention fault models for the Fig. 10 case study: every cell
/// of a codeword is independently at risk with probability `rber` (the raw
/// bit error rate set by the chosen refresh interval), and at-risk cells fail
/// with a fixed per-access probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionSampler {
    /// Probability that any given cell is at risk of data-retention error.
    pub rber: f64,
    /// Per-access failure probability of an at-risk cell (when charged).
    pub per_bit_probability: f64,
}

impl RetentionSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(rber: f64, per_bit_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&rber), "rber {rber} outside [0, 1]");
        assert!(
            (0.0..=1.0).contains(&per_bit_probability),
            "per-bit probability {per_bit_probability} outside [0, 1]"
        );
        Self {
            rber,
            per_bit_probability,
        }
    }

    /// Samples the fault model of one `codeword_bits`-long ECC word.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_memsim::fault::RetentionSampler;
    /// use rand::SeedableRng;
    ///
    /// let sampler = RetentionSampler::new(0.5, 1.0);
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    /// let model = sampler.sample_word(71, &mut rng);
    /// // Roughly half the cells should be at risk.
    /// assert!(model.at_risk_bits().len() > 20 && model.at_risk_bits().len() < 50);
    /// ```
    pub fn sample_word<R: Rng + ?Sized>(&self, codeword_bits: usize, rng: &mut R) -> FaultModel {
        let at_risk = (0..codeword_bits)
            .filter(|_| rng.gen_bool(self.rber))
            .map(|p| AtRiskBit::new(p, self.per_bit_probability))
            .collect();
        FaultModel::new(at_risk, FailureDependence::TrueCell)
    }

    /// Samples exactly `count` distinct at-risk positions in a word (used by
    /// the coverage evaluations, which sweep the number of pre-correction
    /// errors per ECC word rather than an RBER).
    ///
    /// # Panics
    ///
    /// Panics if `count > codeword_bits`.
    pub fn sample_word_with_count<R: Rng + ?Sized>(
        &self,
        codeword_bits: usize,
        count: usize,
        rng: &mut R,
    ) -> FaultModel {
        assert!(
            count <= codeword_bits,
            "cannot place {count} at-risk bits in {codeword_bits} cells"
        );
        let mut positions: Vec<usize> = (0..codeword_bits).collect();
        // Partial Fisher-Yates shuffle: pick `count` distinct positions.
        for i in 0..count {
            let j = rng.gen_range(i..codeword_bits);
            positions.swap(i, j);
        }
        positions.truncate(count);
        positions.sort_unstable();
        let at_risk = positions
            .into_iter()
            .map(|p| AtRiskBit::new(p, self.per_bit_probability))
            .collect();
        FaultModel::new(at_risk, FailureDependence::TrueCell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn at_risk_bit_validates_probability() {
        let bit = AtRiskBit::new(4, 0.5);
        assert_eq!(bit.position, 4);
        assert_eq!(bit.probability, 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn at_risk_bit_rejects_invalid_probability() {
        AtRiskBit::new(0, 1.5);
    }

    #[test]
    fn none_model_is_error_free() {
        let model = FaultModel::none();
        assert!(model.is_error_free());
        assert!(model.at_risk_positions().is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(model.sample_errors(&BitVec::ones(71), &mut rng).is_zero());
        assert_eq!(FaultModel::default(), model);
    }

    #[test]
    fn certain_errors_fire_only_when_charged() {
        let model = FaultModel::uniform(&[2, 6], 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Bit 2 charged, bit 6 not.
        let stored = BitVec::from_indices(8, [2]);
        let errors = model.sample_errors(&stored, &mut rng);
        assert_eq!(errors.iter_ones().collect::<Vec<_>>(), vec![2]);
        // Nothing charged: nothing fails.
        assert!(model.sample_errors(&BitVec::zeros(8), &mut rng).is_zero());
        // Everything charged: both fail.
        let errors = model.sample_errors(&BitVec::ones(8), &mut rng);
        assert_eq!(errors.iter_ones().collect::<Vec<_>>(), vec![2, 6]);
    }

    #[test]
    fn anti_cells_fail_when_discharged() {
        let model = FaultModel::new(vec![AtRiskBit::new(1, 1.0)], FailureDependence::AntiCell);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(model.sample_errors(&BitVec::ones(4), &mut rng).is_zero());
        let errors = model.sample_errors(&BitVec::zeros(4), &mut rng);
        assert_eq!(errors.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn data_independent_cells_fail_regardless_of_value() {
        let model = FaultModel::new(
            vec![AtRiskBit::new(0, 1.0)],
            FailureDependence::DataIndependent,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(!model.sample_errors(&BitVec::zeros(4), &mut rng).is_zero());
        assert!(!model.sample_errors(&BitVec::ones(4), &mut rng).is_zero());
    }

    #[test]
    fn bernoulli_probability_is_respected_statistically() {
        let model = FaultModel::uniform(&[0], 0.25);
        let stored = BitVec::ones(4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let trials = 20_000;
        let failures = (0..trials)
            .filter(|_| !model.sample_errors(&stored, &mut rng).is_zero())
            .count();
        let rate = failures as f64 / trials as f64;
        assert!(
            (rate - 0.25).abs() < 0.02,
            "empirical rate {rate} too far from 0.25"
        );
    }

    #[test]
    fn probability_zero_never_fails_and_one_always_fails() {
        let never = FaultModel::uniform(&[0], 0.0);
        let always = FaultModel::uniform(&[0], 1.0);
        let stored = BitVec::ones(2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(never.sample_errors(&stored, &mut rng).is_zero());
            assert!(!always.sample_errors(&stored, &mut rng).is_zero());
        }
    }

    #[test]
    #[should_panic(expected = "outside codeword")]
    fn sample_errors_rejects_out_of_range_positions() {
        let model = FaultModel::uniform(&[10], 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        model.sample_errors(&BitVec::ones(8), &mut rng);
    }

    #[test]
    fn retention_sampler_density_tracks_rber() {
        let sampler = RetentionSampler::new(0.1, 0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let words = 2000;
        let total_at_risk: usize = (0..words)
            .map(|_| sampler.sample_word(71, &mut rng).at_risk_bits().len())
            .sum();
        let density = total_at_risk as f64 / (words * 71) as f64;
        assert!(
            (density - 0.1).abs() < 0.01,
            "empirical at-risk density {density} too far from 0.1"
        );
    }

    #[test]
    fn retention_sampler_with_count_places_exactly_count_bits() {
        let sampler = RetentionSampler::new(0.0, 0.75);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for count in [0usize, 1, 2, 5, 8] {
            let model = sampler.sample_word_with_count(71, count, &mut rng);
            let positions = model.at_risk_positions();
            assert_eq!(positions.len(), count);
            // Positions are distinct and sorted.
            let mut sorted = positions.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), count);
            for &p in &positions {
                assert!(p < 71);
            }
            for bit in model.at_risk_bits() {
                assert_eq!(bit.probability, 0.75);
            }
        }
    }

    #[test]
    fn sample_word_with_count_covers_all_positions_eventually() {
        let sampler = RetentionSampler::new(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen = [false; 16];
        for _ in 0..500 {
            for p in sampler
                .sample_word_with_count(16, 3, &mut rng)
                .at_risk_positions()
            {
                seen[p] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some positions never sampled");
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn sample_word_with_count_rejects_impossible_counts() {
        let sampler = RetentionSampler::new(0.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        sampler.sample_word_with_count(4, 5, &mut rng);
    }
}
