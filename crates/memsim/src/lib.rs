//! Memory-chip simulation substrate for the HARP reproduction.
//!
//! The HARP paper evaluates error profiling by Monte-Carlo simulation of DRAM
//! data-retention errors in chips that use on-die ECC. This crate provides
//! the chip-side pieces of that simulation:
//!
//! * [`fault`] — the paper's §2.4 error model: independent, data-dependent
//!   Bernoulli errors in individual cells ("true cells" fail only when they
//!   store a '1'), plus a data-retention sampler for the Fig. 10 case study;
//! * [`pattern`] — the memory data patterns used during active profiling
//!   (charged / checkered / random, with the paper's per-round inversion
//!   schedule, §7.1.2);
//! * [`chip`] — a memory chip with on-die ECC: systematic encoding on write,
//!   syndrome decoding on read, and the *decode-bypass* read path that HARP
//!   requires (§5.2), exposing raw data bits but not parity bits.
//!
//! # Example
//!
//! ```
//! use harp_ecc::HammingCode;
//! use harp_gf2::BitVec;
//! use harp_memsim::{chip::MemoryChip, fault::FaultModel};
//! use rand::SeedableRng;
//!
//! let code = HammingCode::random(64, 7)?;
//! let mut chip = MemoryChip::new(code, 1);
//! // Bit 3 of word 0 always fails when charged.
//! chip.set_fault_model(0, FaultModel::uniform(&[3], 1.0));
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! chip.write(0, &BitVec::ones(64));
//! let obs = chip.read(0, &mut rng);
//! // On-die ECC corrects the single raw error.
//! assert_eq!(obs.post_correction_data(), &BitVec::ones(64));
//! // ...but the bypass path exposes it.
//! assert!(!obs.raw_data_bits().get(3));
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod chip;
pub mod fault;
pub mod pattern;
pub mod retention;

pub use chip::{BurstScratch, MemoryChip, ReadObservation};
pub use fault::{AtRiskBit, FaultModel, RetentionSampler};
pub use pattern::{DataPattern, PatternSchedule};
pub use retention::{NormalRetentionSampler, VrtCell, VrtFaultProcess};
