//! A memory chip with on-die ECC, generic over the code.
//!
//! The chip stores one codeword per ECC word and works with any
//! [`LinearBlockCode`] — SEC Hamming, SEC-DED, or the DEC BCH code from
//! `harp_bch`. Writes systematically encode the dataword; reads sample a
//! fresh raw error pattern from the word's [`FaultModel`] (each read models
//! one profiling round / access under the paper's Bernoulli error model) and
//! decode it with the on-die ECC.
//!
//! The returned [`ReadObservation`] exposes three views of the same access:
//!
//! * the **post-correction dataword** — what a normal read returns to the
//!   memory controller;
//! * the **raw data bits** via the decode-bypass path HARP relies on (§5.2) —
//!   the stored data-bit values *before* correction, but never the parity
//!   bits;
//! * simulator-only ground truth (the raw error pattern), used to score
//!   profilers against the exact at-risk sets.

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::{DecodeResult, HammingCode, LinearBlockCode};
use harp_gf2::BitVec;

use crate::fault::FaultModel;

/// Everything observable (and, for the simulator, knowable) about one read
/// of one ECC word. The observation is code-agnostic: whichever code the
/// chip uses, profilers consume the same structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadObservation {
    written: BitVec,
    raw_error: BitVec,
    stored_with_errors: BitVec,
    decode: DecodeResult,
    data_len: usize,
}

impl ReadObservation {
    /// The dataword originally written to this word (known to the memory
    /// controller during profiling, since the profiler programmed it).
    pub fn written_data(&self) -> &BitVec {
        &self.written
    }

    /// The post-correction dataword returned by a normal (decoded) read.
    pub fn post_correction_data(&self) -> &BitVec {
        &self.decode.dataword
    }

    /// The raw data bits returned by the decode-bypass read path: the stored
    /// values of the `k` data bits with any raw errors still present. Parity
    /// bits are *not* visible, matching §5.2 of the paper.
    pub fn raw_data_bits(&self) -> BitVec {
        self.stored_with_errors.slice(0, self.data_len)
    }

    /// The full decode result (outcome and syndrome) of the on-die ECC.
    pub fn decode_result(&self) -> &DecodeResult {
        &self.decode
    }

    /// Dataword positions where the post-correction data differs from the
    /// written data — the post-correction errors the memory controller
    /// observes on a normal read.
    pub fn post_correction_errors(&self) -> Vec<usize> {
        self.decode.post_correction_errors(&self.written)
    }

    /// Dataword positions where the *raw* data bits differ from the written
    /// data — the direct (pre-correction) errors visible through the bypass
    /// path.
    pub fn direct_errors(&self) -> Vec<usize> {
        (&self.raw_data_bits() ^ &self.written)
            .iter_ones()
            .collect()
    }

    /// Simulator-only ground truth: the raw error pattern injected into the
    /// full codeword (including parity bits) for this access.
    pub fn raw_error_pattern(&self) -> &BitVec {
        &self.raw_error
    }
}

/// A memory chip containing `num_words` ECC words protected by on-die ECC of
/// type `C`.
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, LinearBlockCode};
/// use harp_gf2::BitVec;
/// use harp_memsim::{MemoryChip, FaultModel};
/// use rand::SeedableRng;
///
/// let code = HammingCode::random(64, 5)?;
/// let mut chip = MemoryChip::new(code, 4);
/// chip.set_fault_model(2, FaultModel::uniform(&[0, 1], 1.0));
/// chip.write(2, &BitVec::ones(64));
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let obs = chip.read(2, &mut rng);
/// // Two simultaneous raw errors exceed SEC correction capability, so the
/// // post-correction data is corrupted...
/// assert!(!obs.post_correction_errors().is_empty());
/// // ...while the bypass path reports exactly the two direct errors.
/// assert_eq!(obs.direct_errors(), vec![0, 1]);
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryChip<C: LinearBlockCode = HammingCode> {
    code: C,
    stored: Vec<BitVec>,
    written: Vec<BitVec>,
    faults: Vec<FaultModel>,
}

impl<C: LinearBlockCode> MemoryChip<C> {
    /// Creates a chip with `num_words` words, all initialized to zero and
    /// error-free.
    pub fn new(code: C, num_words: usize) -> Self {
        let zero_data = BitVec::zeros(code.data_len());
        let zero_code = code.encode(&zero_data);
        Self {
            stored: vec![zero_code; num_words],
            written: vec![zero_data; num_words],
            faults: vec![FaultModel::none(); num_words],
            code,
        }
    }

    /// The on-die ECC code used by this chip.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Number of ECC words in the chip.
    pub fn num_words(&self) -> usize {
        self.stored.len()
    }

    /// Sets the fault model of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn set_fault_model(&mut self, word: usize, model: FaultModel) {
        assert!(word < self.num_words(), "word index {word} out of range");
        self.faults[word] = model;
    }

    /// The fault model of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn fault_model(&self, word: usize) -> &FaultModel {
        assert!(word < self.num_words(), "word index {word} out of range");
        &self.faults[word]
    }

    /// Writes (and on-die-ECC encodes) a dataword into word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the dataword length does not match
    /// the code.
    pub fn write(&mut self, word: usize, data: &BitVec) {
        assert!(word < self.num_words(), "word index {word} out of range");
        self.stored[word] = self.code.encode(data);
        self.written[word] = data.clone();
    }

    /// The dataword most recently written to word `word` (simulation-side
    /// bookkeeping; the real chip does not retain this).
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn written_data(&self, word: usize) -> &BitVec {
        assert!(word < self.num_words(), "word index {word} out of range");
        &self.written[word]
    }

    /// Performs one access of word `word`: samples a fresh raw error pattern
    /// from the word's fault model, applies it to the stored codeword, and
    /// decodes with the on-die ECC.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn read<R: Rng + ?Sized>(&self, word: usize, rng: &mut R) -> ReadObservation {
        assert!(word < self.num_words(), "word index {word} out of range");
        let clean = &self.stored[word];
        let raw_error = self.faults[word].sample_errors(clean, rng);
        let stored_with_errors = clean ^ &raw_error;
        let decode = self.code.decode(&stored_with_errors);
        ReadObservation {
            written: self.written[word].clone(),
            raw_error,
            stored_with_errors,
            decode,
            data_len: self.code.data_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::DecodeOutcome;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn chip_with_faults(at_risk: &[usize], probability: f64) -> MemoryChip {
        let code = HammingCode::random(64, 17).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(at_risk, probability));
        chip
    }

    #[test]
    fn new_chip_reads_back_zero_cleanly() {
        let code = HammingCode::random(64, 1).unwrap();
        let chip = MemoryChip::new(code, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for word in 0..3 {
            let obs = chip.read(word, &mut rng);
            assert!(obs.post_correction_data().is_zero());
            assert!(obs.post_correction_errors().is_empty());
            assert!(obs.direct_errors().is_empty());
            assert_eq!(obs.decode_result().outcome, DecodeOutcome::NoErrorDetected);
        }
    }

    #[test]
    fn write_then_read_round_trips_without_faults() {
        let code = HammingCode::random(64, 2).unwrap();
        let mut chip = MemoryChip::new(code, 2);
        let data = BitVec::from_u64(64, 0xDEAD_BEEF_CAFE_F00D);
        chip.write(1, &data);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let obs = chip.read(1, &mut rng);
        assert_eq!(obs.post_correction_data(), &data);
        assert_eq!(obs.written_data(), &data);
        assert_eq!(&obs.raw_data_bits(), &data);
        assert_eq!(chip.written_data(1), &data);
    }

    #[test]
    fn single_at_risk_bit_is_corrected_but_visible_through_bypass() {
        let chip = chip_with_faults(&[5], 1.0);
        let mut chip = chip;
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let obs = chip.read(0, &mut rng);
        // Normal read: corrected.
        assert!(obs.post_correction_errors().is_empty());
        assert_eq!(obs.decode_result().outcome, DecodeOutcome::corrected(5));
        // Bypass read: the direct error is visible.
        assert_eq!(obs.direct_errors(), vec![5]);
        assert_eq!(
            obs.raw_error_pattern().iter_ones().collect::<Vec<_>>(),
            vec![5]
        );
    }

    #[test]
    fn uncharged_at_risk_cells_do_not_fail() {
        let mut chip = chip_with_faults(&[5], 1.0);
        chip.write(0, &BitVec::zeros(64));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let obs = chip.read(0, &mut rng);
        assert!(obs.direct_errors().is_empty());
        assert!(obs.post_correction_errors().is_empty());
    }

    #[test]
    fn multi_bit_faults_can_corrupt_post_correction_data() {
        let mut chip = chip_with_faults(&[0, 1, 2], 1.0);
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let obs = chip.read(0, &mut rng);
        assert_eq!(obs.direct_errors(), vec![0, 1, 2]);
        // Three errors exceed SEC capability: at least two post-correction
        // errors must remain (the decoder can remove or add at most one).
        assert!(obs.post_correction_errors().len() >= 2);
    }

    #[test]
    fn parity_at_risk_bits_are_invisible_to_the_bypass_path() {
        let code = HammingCode::random(64, 23).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        // Word with a single at-risk parity bit that always fails.
        chip.set_fault_model(0, FaultModel::uniform(&[64], 1.0));
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // The parity bit may or may not be charged depending on the code; if
        // it is charged it fails, is corrected, and never shows up in either
        // the post-correction data or the bypass data bits.
        let obs = chip.read(0, &mut rng);
        assert!(obs.post_correction_errors().is_empty());
        assert!(obs.direct_errors().is_empty());
    }

    #[test]
    fn chips_are_generic_over_the_code() {
        // The same chip model runs a SEC-DED-protected word: a double error
        // that would miscorrect under plain SEC is detected instead, so the
        // post-correction data shows exactly the two direct errors.
        let code = harp_ecc::ExtendedHammingCode::random(64, 17).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[3, 9], 1.0));
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let obs = chip.read(0, &mut rng);
        assert_eq!(obs.direct_errors(), vec![3, 9]);
        assert_eq!(obs.post_correction_errors(), vec![3, 9]);
        assert_eq!(
            obs.decode_result().outcome,
            DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn reads_resample_errors_each_access() {
        let mut chip = chip_with_faults(&[7], 0.5);
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut failed = 0;
        let trials = 2000;
        for _ in 0..trials {
            if !chip.read(0, &mut rng).direct_errors().is_empty() {
                failed += 1;
            }
        }
        let rate = failed as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_word_panics() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        chip.read(1, &mut rng);
    }

    #[test]
    fn fault_model_accessor_returns_configured_model() {
        let mut chip = chip_with_faults(&[], 0.0);
        let model = FaultModel::uniform(&[1, 2, 3], 0.25);
        chip.set_fault_model(0, model.clone());
        assert_eq!(chip.fault_model(0), &model);
        assert_eq!(chip.num_words(), 1);
    }
}
