//! A memory chip with on-die ECC, generic over the code.
//!
//! The chip stores one codeword per ECC word and works with any
//! [`LinearBlockCode`] — SEC Hamming, SEC-DED, or the DEC BCH code from
//! `harp_bch`. Writes systematically encode the dataword; reads sample a
//! fresh raw error pattern from the word's [`FaultModel`] (each read models
//! one profiling round / access under the paper's Bernoulli error model) and
//! decode it with the on-die ECC.
//!
//! The returned [`ReadObservation`] exposes three views of the same access:
//!
//! * the **post-correction dataword** — what a normal read returns to the
//!   memory controller;
//! * the **raw data bits** via the decode-bypass path HARP relies on (§5.2) —
//!   the stored data-bit values *before* correction, but never the parity
//!   bits;
//! * simulator-only ground truth (the raw error pattern), used to score
//!   profilers against the exact at-risk sets.

use std::ops::Range;

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::{DecodeResult, HammingCode, LinearBlockCode};
use harp_gf2::{BitVec, BitsliceScratch};

use crate::fault::FaultModel;

/// Everything observable (and, for the simulator, knowable) about one read
/// of one ECC word. The observation is code-agnostic: whichever code the
/// chip uses, profilers consume the same structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadObservation {
    written: BitVec,
    raw_error: BitVec,
    stored_with_errors: BitVec,
    decode: DecodeResult,
    data_len: usize,
}

impl ReadObservation {
    /// The dataword originally written to this word (known to the memory
    /// controller during profiling, since the profiler programmed it).
    pub fn written_data(&self) -> &BitVec {
        &self.written
    }

    /// The post-correction dataword returned by a normal (decoded) read.
    pub fn post_correction_data(&self) -> &BitVec {
        &self.decode.dataword
    }

    /// The raw data bits returned by the decode-bypass read path: the stored
    /// values of the `k` data bits with any raw errors still present. Parity
    /// bits are *not* visible, matching §5.2 of the paper.
    pub fn raw_data_bits(&self) -> BitVec {
        self.stored_with_errors.slice(0, self.data_len)
    }

    /// The full decode result (outcome and syndrome) of the on-die ECC.
    pub fn decode_result(&self) -> &DecodeResult {
        &self.decode
    }

    /// Dataword positions where the post-correction data differs from the
    /// written data — the post-correction errors the memory controller
    /// observes on a normal read.
    pub fn post_correction_errors(&self) -> Vec<usize> {
        self.decode.post_correction_errors(&self.written)
    }

    /// Dataword positions where the *raw* data bits differ from the written
    /// data — the direct (pre-correction) errors visible through the bypass
    /// path.
    ///
    /// Evaluated word-by-word over the packed bit representations (no
    /// intermediate `BitVec`s): this runs once per word per profiling round
    /// in every bypass-based campaign.
    pub fn direct_errors(&self) -> Vec<usize> {
        let mut errors = Vec::new();
        let stored = self.stored_with_errors.as_words();
        let written = self.written.as_words();
        for (index, (&stored_word, &written_word)) in stored.iter().zip(written).enumerate() {
            let mut diff = stored_word ^ written_word;
            // Parity bits sharing the written word's last u64 are masked out
            // (`written` carries exactly `data_len` bits with a masked tail).
            let word_end = (index + 1) * 64;
            if word_end > self.data_len {
                let live = 64 - (word_end - self.data_len);
                diff &= if live == 0 {
                    0
                } else {
                    u64::MAX >> (64 - live)
                };
            }
            while diff != 0 {
                errors.push(index * 64 + diff.trailing_zeros() as usize);
                diff &= diff - 1;
            }
        }
        errors
    }

    /// Simulator-only ground truth: the raw error pattern injected into the
    /// full codeword (including parity bits) for this access.
    pub fn raw_error_pattern(&self) -> &BitVec {
        &self.raw_error
    }

    /// An empty placeholder observation whose buffers the burst read path
    /// overwrites in place.
    fn placeholder() -> Self {
        Self {
            written: BitVec::default(),
            raw_error: BitVec::default(),
            stored_with_errors: BitVec::default(),
            decode: DecodeResult::default(),
            data_len: 0,
        }
    }
}

/// Reusable buffers for [`MemoryChip::read_burst`].
///
/// A scratch owns one [`ReadObservation`] slot per burst word plus the
/// buffers of the batched bit-sliced kernel pass: the packed syndromes, the
/// per-block nonzero-syndrome masks, and the lane scratch of the transpose.
/// Buffers grow **geometrically** to the largest burst they have served and
/// are then reused verbatim, so steady-state scrub passes — including
/// alternating burst sizes, such as module line reads interleaved with
/// controller scrub ranges — perform **zero heap allocations**; see
/// [`MemoryChip::read_burst`] for a usage example and the root
/// `burst_alloc` test for the allocation-count guarantee.
#[derive(Debug, Default)]
pub struct BurstScratch {
    observations: Vec<ReadObservation>,
    syndromes: Vec<u64>,
    masks: Vec<u64>,
    slices: BitsliceScratch,
}

impl BurstScratch {
    /// Creates an empty scratch; buffers are sized lazily by the first burst.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch pre-sized for bursts of `words` observations, so
    /// even the first burst of a long-lived campaign performs no observation
    /// resizing.
    pub fn with_capacity(words: usize) -> Self {
        let mut scratch = Self::default();
        scratch
            .observations
            .resize_with(words, ReadObservation::placeholder);
        scratch.syndromes.reserve(words);
        scratch.masks.reserve(words.div_ceil(64));
        scratch
    }

    /// Clears the recorded syndromes and masks of the last burst **without
    /// freeing any capacity**: observation slots (and the buffers inside
    /// them), syndrome/mask vectors, and the bit-slice lanes all stay
    /// allocated, so a cleared scratch serves its next burst with zero heap
    /// allocations.
    pub fn clear(&mut self) {
        self.syndromes.clear();
        self.masks.clear();
    }

    /// The burst slots for a burst of `count` words, growing the observation
    /// buffer geometrically if needed (so a sequence of growing or
    /// alternating burst sizes settles after logarithmically many resizes
    /// instead of re-reserving on every new maximum).
    fn slots(
        &mut self,
        count: usize,
    ) -> (
        &mut [ReadObservation],
        &mut Vec<u64>,
        &mut Vec<u64>,
        &mut BitsliceScratch,
    ) {
        if self.observations.len() < count {
            let target = count.max(self.observations.len().saturating_mul(2));
            self.observations
                .resize_with(target, ReadObservation::placeholder);
        }
        (
            &mut self.observations[..count],
            &mut self.syndromes,
            &mut self.masks,
            &mut self.slices,
        )
    }
}

/// A memory chip containing `num_words` ECC words protected by on-die ECC of
/// type `C`.
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, LinearBlockCode};
/// use harp_gf2::BitVec;
/// use harp_memsim::{MemoryChip, FaultModel};
/// use rand::SeedableRng;
///
/// let code = HammingCode::random(64, 5)?;
/// let mut chip = MemoryChip::new(code, 4);
/// chip.set_fault_model(2, FaultModel::uniform(&[0, 1], 1.0));
/// chip.write(2, &BitVec::ones(64));
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
/// let obs = chip.read(2, &mut rng);
/// // Two simultaneous raw errors exceed SEC correction capability, so the
/// // post-correction data is corrupted...
/// assert!(!obs.post_correction_errors().is_empty());
/// // ...while the bypass path reports exactly the two direct errors.
/// assert_eq!(obs.direct_errors(), vec![0, 1]);
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryChip<C: LinearBlockCode = HammingCode> {
    code: C,
    stored: Vec<BitVec>,
    written: Vec<BitVec>,
    faults: Vec<FaultModel>,
}

impl<C: LinearBlockCode> MemoryChip<C> {
    /// Creates a chip with `num_words` words, all initialized to zero and
    /// error-free.
    pub fn new(code: C, num_words: usize) -> Self {
        let zero_data = BitVec::zeros(code.data_len());
        let zero_code = code.encode(&zero_data);
        Self {
            stored: vec![zero_code; num_words],
            written: vec![zero_data; num_words],
            faults: vec![FaultModel::none(); num_words],
            code,
        }
    }

    /// The on-die ECC code used by this chip.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// Number of ECC words in the chip.
    pub fn num_words(&self) -> usize {
        self.stored.len()
    }

    /// Sets the fault model of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn set_fault_model(&mut self, word: usize, model: FaultModel) {
        assert!(word < self.num_words(), "word index {word} out of range");
        self.faults[word] = model;
    }

    /// The fault model of word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn fault_model(&self, word: usize) -> &FaultModel {
        assert!(word < self.num_words(), "word index {word} out of range");
        &self.faults[word]
    }

    /// Writes (and on-die-ECC encodes) a dataword into word `word`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the dataword length does not match
    /// the code.
    pub fn write(&mut self, word: usize, data: &BitVec) {
        assert!(word < self.num_words(), "word index {word} out of range");
        self.stored[word] = self.code.encode(data);
        self.written[word] = data.clone();
    }

    /// Writes (and on-die-ECC encodes) a dataword into word `word`, reusing
    /// the word's existing storage buffers: the semantic twin of
    /// [`MemoryChip::write`] with no heap allocation in the steady state.
    ///
    /// The data bits are spliced into the stored codeword's prefix and the
    /// parity bits recomputed from the code's parity block — exactly the
    /// systematic layout [`LinearBlockCode::encode`] produces (checked by a
    /// debug assertion, so any code overriding `encode` with a different
    /// layout fails fast in tests). Per-round rewrites are the second-hottest
    /// chip operation of a profiling campaign after the burst read itself;
    /// the cell-batched campaign engine rewrites every word of a sweep cell
    /// each round through this path.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the dataword length does not match
    /// the code.
    pub fn write_in_place(&mut self, word: usize, data: &BitVec) {
        assert!(word < self.num_words(), "word index {word} out of range");
        assert_eq!(
            data.len(),
            self.code.data_len(),
            "dataword length mismatch: expected {}, got {}",
            self.code.data_len(),
            data.len()
        );
        self.written[word].copy_from(data);
        let stored = &mut self.stored[word];
        stored.overwrite_prefix(data);
        let data_len = data.len();
        for (row, parity_row) in self.code.parity_block().iter_rows().enumerate() {
            stored.set(data_len + row, parity_row.dot(data));
        }
        debug_assert_eq!(
            stored,
            &self.code.encode(data),
            "write_in_place must reproduce encode's systematic layout"
        );
    }

    /// The dataword most recently written to word `word` (simulation-side
    /// bookkeeping; the real chip does not retain this).
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn written_data(&self, word: usize) -> &BitVec {
        assert!(word < self.num_words(), "word index {word} out of range");
        &self.written[word]
    }

    /// Performs one access of word `word`: samples a fresh raw error pattern
    /// from the word's fault model, applies it to the stored codeword, and
    /// decodes with the on-die ECC.
    ///
    /// # Panics
    ///
    /// Panics if `word >= num_words()`.
    pub fn read<R: Rng + ?Sized>(&self, word: usize, rng: &mut R) -> ReadObservation {
        assert!(word < self.num_words(), "word index {word} out of range");
        let clean = &self.stored[word];
        let raw_error = self.faults[word].sample_errors(clean, rng);
        let stored_with_errors = clean ^ &raw_error;
        let decode = self.code.decode(&stored_with_errors);
        ReadObservation {
            written: self.written[word].clone(),
            raw_error,
            stored_with_errors,
            decode,
            data_len: self.code.data_len(),
        }
    }

    /// Performs one access of every word in `words` as a single burst — the
    /// batched twin of [`MemoryChip::read`], used for whole scrub passes.
    ///
    /// The burst samples each word's raw error pattern in word order
    /// (consuming exactly the RNG draws a word-at-a-time `read` loop would),
    /// computes all syndromes in **one** batched bit-sliced
    /// `SyndromeKernel::syndrome_words_bitsliced_into` pass (64 words per
    /// transposed block), and then resolves the burst sparsely: words the
    /// per-block nonzero-syndrome masks leave unflagged short-circuit
    /// through the code's `decode_clean_into` with zero resolve work, and
    /// only the flagged words run the allocation-free
    /// `decode_with_syndrome_into` scalar resolve. All buffers live in
    /// `scratch`, so after the first burst of a given size the steady-state
    /// path performs no heap allocation. Observations are byte-identical to
    /// what `read` returns for the same words and RNG stream (`read` is the
    /// reference implementation; the cross-code equivalence suite asserts
    /// this).
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty, reversed, or extends past
    /// [`MemoryChip::num_words`].
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::HammingCode;
    /// use harp_gf2::BitVec;
    /// use harp_memsim::{BurstScratch, FaultModel, MemoryChip};
    /// use rand::SeedableRng;
    ///
    /// let code = HammingCode::random(64, 5)?;
    /// let mut chip = MemoryChip::new(code, 8);
    /// chip.set_fault_model(3, FaultModel::uniform(&[3], 1.0));
    /// chip.write(3, &BitVec::ones(64));
    ///
    /// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    /// let mut scratch = BurstScratch::new();
    /// // One scrub pass over the whole chip; `scratch` is reusable across
    /// // passes, keeping the steady state allocation-free.
    /// let observations = chip.read_burst(0..8, &mut rng, &mut scratch);
    /// assert_eq!(observations.len(), 8);
    /// assert_eq!(observations[3].direct_errors(), vec![3]); // corrected...
    /// assert!(observations[3].post_correction_errors().is_empty()); // ...cleanly
    /// # Ok::<(), harp_ecc::CodeError>(())
    /// ```
    pub fn read_burst<'s, R: Rng + ?Sized>(
        &self,
        words: Range<usize>,
        rng: &mut R,
        scratch: &'s mut BurstScratch,
    ) -> &'s [ReadObservation] {
        let count = self.check_burst_range(&words);
        let (burst, syndromes, masks, slices) = scratch.slots(count);

        // Phase 1 — fault injection, in word order (same RNG stream as a
        // scalar read loop).
        for (offset, obs) in burst.iter_mut().enumerate() {
            self.inject_word(words.start + offset, obs, rng);
        }

        self.decode_burst(burst, syndromes, masks, slices);
        burst
    }

    /// Performs one access of every word in `words` as a single burst, with
    /// **one independent RNG stream per word**: word `words.start + i` samples
    /// its raw error pattern from `rngs[i]`, consuming exactly the draws a
    /// scalar `read` (or a one-word [`MemoryChip::read_burst`]) of that word
    /// with that RNG would.
    ///
    /// This is the entry point for cross-word batched campaigns: many
    /// independent Monte-Carlo words (each with its own deterministic seed)
    /// share one chip and are scrubbed per round in a single burst, while
    /// every word's observation sequence stays bit-identical to running it
    /// alone. Everything else matches [`MemoryChip::read_burst`]: one batched
    /// syndrome pass, allocation-free steady state, observations identical to
    /// the scalar reference path.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty, reversed, or extends past
    /// [`MemoryChip::num_words`], or if `rngs.len()` does not match the burst
    /// length.
    pub fn read_burst_with_rngs<'s, R: Rng>(
        &self,
        words: Range<usize>,
        rngs: &mut [R],
        scratch: &'s mut BurstScratch,
    ) -> &'s [ReadObservation] {
        let count = self.check_burst_range(&words);
        assert_eq!(
            rngs.len(),
            count,
            "burst of {count} words needs {count} RNG streams, got {}",
            rngs.len()
        );
        let (burst, syndromes, masks, slices) = scratch.slots(count);

        // Phase 1 — fault injection, each word drawing from its own stream.
        for ((offset, obs), rng) in burst.iter_mut().enumerate().zip(rngs.iter_mut()) {
            self.inject_word(words.start + offset, obs, rng);
        }

        self.decode_burst(burst, syndromes, masks, slices);
        burst
    }

    /// Validates a burst range and returns its length.
    fn check_burst_range(&self, words: &Range<usize>) -> usize {
        assert!(
            words.start < words.end,
            "word range {words:?} is empty or reversed"
        );
        assert!(
            words.end <= self.num_words(),
            "word range {words:?} out of range for {} words",
            self.num_words()
        );
        words.end - words.start
    }

    /// Burst phase 1 for one word: samples the word's raw error pattern from
    /// `rng` and fills the observation's pre-decode buffers in place.
    fn inject_word<R: Rng + ?Sized>(&self, word: usize, obs: &mut ReadObservation, rng: &mut R) {
        let clean = &self.stored[word];
        obs.written.copy_from(&self.written[word]);
        self.faults[word].sample_errors_into(clean, rng, &mut obs.raw_error);
        obs.stored_with_errors.copy_from(clean);
        obs.stored_with_errors ^= &obs.raw_error;
        obs.data_len = self.code.data_len();
    }

    /// Burst phases 2–3: one batched bit-sliced kernel pass over the whole
    /// burst, then **sparse** bounded-distance resolution of only the words
    /// the per-block nonzero-syndrome masks flag as dirty; every clean word
    /// short-circuits through the code's zero-syndrome decode.
    ///
    /// The kernel pass runs over the **raw error patterns**, not the stored
    /// codewords: every clean stored word is a codeword (writes go through
    /// the systematic encoder), so `H · (c ⊕ e) = H · e` by linearity and
    /// the syndromes are identical. Error patterns are overwhelmingly sparse
    /// at realistic error rates, which lets the bit-sliced pass skip the
    /// transpose and row evaluation of every all-zero block outright.
    fn decode_burst(
        &self,
        burst: &mut [ReadObservation],
        syndromes: &mut Vec<u64>,
        masks: &mut Vec<u64>,
        slices: &mut BitsliceScratch,
    ) {
        self.code.syndrome_kernel().syndrome_words_bitsliced_into(
            burst.iter().map(|obs| &obs.raw_error),
            syndromes,
            masks,
            slices,
        );
        for (block, &mask) in masks.iter().enumerate() {
            let start = block * 64;
            let block_len = (burst.len() - start).min(64);
            let block_width = if block_len == 64 {
                u64::MAX
            } else {
                (1u64 << block_len) - 1
            };
            // Clean words (mask bit 0) short-circuit to the zero-syndrome
            // decode with no per-word syndrome state...
            let mut clean = !mask & block_width;
            while clean != 0 {
                let obs = &mut burst[start + clean.trailing_zeros() as usize];
                self.code
                    .decode_clean_into(&obs.stored_with_errors, &mut obs.decode);
                clean &= clean - 1;
            }
            // ...and only the flagged words run the scalar syndrome resolve.
            let mut dirty = mask;
            while dirty != 0 {
                let index = start + dirty.trailing_zeros() as usize;
                let obs = &mut burst[index];
                self.code.decode_with_syndrome_into(
                    &obs.stored_with_errors,
                    syndromes[index],
                    &mut obs.decode,
                );
                dirty &= dirty - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::DecodeOutcome;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn chip_with_faults(at_risk: &[usize], probability: f64) -> MemoryChip {
        let code = HammingCode::random(64, 17).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(at_risk, probability));
        chip
    }

    #[test]
    fn new_chip_reads_back_zero_cleanly() {
        let code = HammingCode::random(64, 1).unwrap();
        let chip = MemoryChip::new(code, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for word in 0..3 {
            let obs = chip.read(word, &mut rng);
            assert!(obs.post_correction_data().is_zero());
            assert!(obs.post_correction_errors().is_empty());
            assert!(obs.direct_errors().is_empty());
            assert_eq!(obs.decode_result().outcome, DecodeOutcome::NoErrorDetected);
        }
    }

    #[test]
    fn write_then_read_round_trips_without_faults() {
        let code = HammingCode::random(64, 2).unwrap();
        let mut chip = MemoryChip::new(code, 2);
        let data = BitVec::from_u64(64, 0xDEAD_BEEF_CAFE_F00D);
        chip.write(1, &data);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let obs = chip.read(1, &mut rng);
        assert_eq!(obs.post_correction_data(), &data);
        assert_eq!(obs.written_data(), &data);
        assert_eq!(&obs.raw_data_bits(), &data);
        assert_eq!(chip.written_data(1), &data);
    }

    #[test]
    fn single_at_risk_bit_is_corrected_but_visible_through_bypass() {
        let chip = chip_with_faults(&[5], 1.0);
        let mut chip = chip;
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let obs = chip.read(0, &mut rng);
        // Normal read: corrected.
        assert!(obs.post_correction_errors().is_empty());
        assert_eq!(obs.decode_result().outcome, DecodeOutcome::corrected(5));
        // Bypass read: the direct error is visible.
        assert_eq!(obs.direct_errors(), vec![5]);
        assert_eq!(
            obs.raw_error_pattern().iter_ones().collect::<Vec<_>>(),
            vec![5]
        );
    }

    #[test]
    fn uncharged_at_risk_cells_do_not_fail() {
        let mut chip = chip_with_faults(&[5], 1.0);
        chip.write(0, &BitVec::zeros(64));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let obs = chip.read(0, &mut rng);
        assert!(obs.direct_errors().is_empty());
        assert!(obs.post_correction_errors().is_empty());
    }

    #[test]
    fn multi_bit_faults_can_corrupt_post_correction_data() {
        let mut chip = chip_with_faults(&[0, 1, 2], 1.0);
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let obs = chip.read(0, &mut rng);
        assert_eq!(obs.direct_errors(), vec![0, 1, 2]);
        // Three errors exceed SEC capability: at least two post-correction
        // errors must remain (the decoder can remove or add at most one).
        assert!(obs.post_correction_errors().len() >= 2);
    }

    #[test]
    fn parity_at_risk_bits_are_invisible_to_the_bypass_path() {
        let code = HammingCode::random(64, 23).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        // Word with a single at-risk parity bit that always fails.
        chip.set_fault_model(0, FaultModel::uniform(&[64], 1.0));
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // The parity bit may or may not be charged depending on the code; if
        // it is charged it fails, is corrected, and never shows up in either
        // the post-correction data or the bypass data bits.
        let obs = chip.read(0, &mut rng);
        assert!(obs.post_correction_errors().is_empty());
        assert!(obs.direct_errors().is_empty());
    }

    #[test]
    fn chips_are_generic_over_the_code() {
        // The same chip model runs a SEC-DED-protected word: a double error
        // that would miscorrect under plain SEC is detected instead, so the
        // post-correction data shows exactly the two direct errors.
        let code = harp_ecc::ExtendedHammingCode::random(64, 17).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[3, 9], 1.0));
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let obs = chip.read(0, &mut rng);
        assert_eq!(obs.direct_errors(), vec![3, 9]);
        assert_eq!(obs.post_correction_errors(), vec![3, 9]);
        assert_eq!(
            obs.decode_result().outcome,
            DecodeOutcome::DetectedUncorrectable
        );
    }

    #[test]
    fn reads_resample_errors_each_access() {
        let mut chip = chip_with_faults(&[7], 0.5);
        chip.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut failed = 0;
        let trials = 2000;
        for _ in 0..trials {
            if !chip.read(0, &mut rng).direct_errors().is_empty() {
                failed += 1;
            }
        }
        let rate = failed as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_out_of_range_word_panics() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        chip.read(1, &mut rng);
    }

    #[test]
    fn burst_observations_match_the_scalar_read_loop() {
        let code = HammingCode::random(64, 17).unwrap();
        let mut chip = MemoryChip::new(code, 6);
        // A mix of clean words, single-error words, and a multi-error word.
        chip.set_fault_model(1, FaultModel::uniform(&[5], 1.0));
        chip.set_fault_model(3, FaultModel::uniform(&[0, 1, 2], 1.0));
        chip.set_fault_model(4, FaultModel::uniform(&[9, 40], 0.5));
        for word in 0..6 {
            chip.write(word, &BitVec::ones(64));
        }

        let mut scalar_rng = ChaCha8Rng::seed_from_u64(21);
        let scalar: Vec<ReadObservation> = (1..5).map(|w| chip.read(w, &mut scalar_rng)).collect();

        let mut burst_rng = ChaCha8Rng::seed_from_u64(21);
        let mut scratch = BurstScratch::new();
        let burst = chip.read_burst(1..5, &mut burst_rng, &mut scratch);
        assert_eq!(burst, scalar.as_slice());
    }

    #[test]
    fn burst_scratch_is_reusable_across_bursts_of_different_sizes() {
        let code = HammingCode::random(16, 23).unwrap();
        let mut chip = MemoryChip::new(code, 8);
        chip.set_fault_model(2, FaultModel::uniform(&[1], 1.0));
        for word in 0..8 {
            chip.write(word, &BitVec::ones(16));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut scratch = BurstScratch::new();
        assert_eq!(chip.read_burst(0..8, &mut rng, &mut scratch).len(), 8);
        // A shorter follow-up burst returns only its own observations even
        // though the scratch still holds eight slots.
        let short = chip.read_burst(2..4, &mut rng, &mut scratch);
        assert_eq!(short.len(), 2);
        assert_eq!(short[0].direct_errors(), vec![1]);

        let mut fresh_rng = ChaCha8Rng::seed_from_u64(5);
        let mut fresh_scratch = BurstScratch::new();
        let mut replay = Vec::new();
        replay.extend_from_slice(chip.read_burst(0..8, &mut fresh_rng, &mut fresh_scratch));
        replay.extend_from_slice(chip.read_burst(2..4, &mut fresh_rng, &mut fresh_scratch));
        assert_eq!(&replay[8..], short);
    }

    #[test]
    fn write_in_place_matches_write_for_every_code_family() {
        let hamming = HammingCode::random(64, 3).unwrap();
        let secded = harp_ecc::ExtendedHammingCode::random(64, 3).unwrap();
        let patterns = [
            BitVec::from_u64(64, 0xDEAD_BEEF_CAFE_F00D),
            BitVec::zeros(64),
            BitVec::ones(64),
            BitVec::from_indices(64, [0, 7, 63]),
        ];
        fn check<C: LinearBlockCode + Clone>(code: C, patterns: &[BitVec]) {
            let mut via_write = MemoryChip::new(code.clone(), 2);
            let mut in_place = MemoryChip::new(code, 2);
            // Repeated rewrites of the same slots must track `write` exactly.
            for data in patterns {
                via_write.write(1, data);
                in_place.write_in_place(1, data);
                assert_eq!(via_write.written_data(1), in_place.written_data(1));
                let mut rng_a = ChaCha8Rng::seed_from_u64(5);
                let mut rng_b = ChaCha8Rng::seed_from_u64(5);
                assert_eq!(via_write.read(1, &mut rng_a), in_place.read(1, &mut rng_b));
            }
        }
        check(hamming, &patterns);
        check(secded, &patterns);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_in_place_rejects_wrong_dataword_length() {
        let code = HammingCode::random(64, 3).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.write_in_place(0, &BitVec::zeros(32));
    }

    #[test]
    fn per_word_rng_burst_matches_independent_scalar_streams() {
        let code = HammingCode::random(64, 29).unwrap();
        let mut chip = MemoryChip::new(code, 4);
        chip.set_fault_model(0, FaultModel::uniform(&[3], 0.5));
        chip.set_fault_model(1, FaultModel::uniform(&[7, 12], 0.5));
        chip.set_fault_model(3, FaultModel::uniform(&[0, 1, 2], 0.75));
        for word in 0..4 {
            chip.write(word, &BitVec::ones(64));
        }

        // Reference: each word read alone, with its own RNG stream.
        let scalar: Vec<ReadObservation> = (0..4)
            .map(|w| {
                let mut rng = ChaCha8Rng::seed_from_u64(100 + w as u64);
                chip.read(w, &mut rng)
            })
            .collect();

        let mut rngs: Vec<ChaCha8Rng> = (0..4)
            .map(|w| ChaCha8Rng::seed_from_u64(100 + w as u64))
            .collect();
        let mut scratch = BurstScratch::new();
        let burst = chip.read_burst_with_rngs(0..4, &mut rngs, &mut scratch);
        assert_eq!(burst, scalar.as_slice());
    }

    #[test]
    fn per_word_rng_streams_advance_independently_across_bursts() {
        let code = HammingCode::random(16, 31).unwrap();
        let mut chip = MemoryChip::new(code, 2);
        chip.set_fault_model(0, FaultModel::uniform(&[1], 0.5));
        chip.set_fault_model(1, FaultModel::uniform(&[2, 5], 0.5));
        chip.write(0, &BitVec::ones(16));
        chip.write(1, &BitVec::ones(16));

        // Two burst rounds must equal two scalar rounds per word, with each
        // word's stream advancing only by its own draws.
        let mut scalar_rngs: Vec<ChaCha8Rng> =
            (0..2).map(|w| ChaCha8Rng::seed_from_u64(7 + w)).collect();
        let mut scalar = Vec::new();
        for _round in 0..2 {
            for (w, rng) in scalar_rngs.iter_mut().enumerate() {
                scalar.push(chip.read(w, rng));
            }
        }

        let mut rngs: Vec<ChaCha8Rng> = (0..2).map(|w| ChaCha8Rng::seed_from_u64(7 + w)).collect();
        let mut scratch = BurstScratch::with_capacity(2);
        let mut burst = Vec::new();
        for _round in 0..2 {
            burst.extend_from_slice(chip.read_burst_with_rngs(0..2, &mut rngs, &mut scratch));
        }
        assert_eq!(burst, scalar);
    }

    #[test]
    #[should_panic(expected = "RNG streams")]
    fn read_burst_with_rngs_rejects_mismatched_stream_count() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 4);
        let mut rngs = vec![ChaCha8Rng::seed_from_u64(0); 2];
        chip.read_burst_with_rngs(0..4, &mut rngs, &mut BurstScratch::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_burst_with_rngs_checks_word_range() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 2);
        let mut rngs = vec![ChaCha8Rng::seed_from_u64(0); 3];
        chip.read_burst_with_rngs(1..4, &mut rngs, &mut BurstScratch::new());
    }

    #[test]
    #[should_panic(expected = "empty or reversed")]
    fn read_burst_empty_range_panics() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        chip.read_burst(2..2, &mut rng, &mut BurstScratch::new());
    }

    #[test]
    #[should_panic(expected = "empty or reversed")]
    fn read_burst_reversed_range_panics() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        #[allow(clippy::reversed_empty_ranges)]
        chip.read_burst(3..1, &mut rng, &mut BurstScratch::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_burst_past_words_per_chip_panics() {
        let code = HammingCode::random(8, 3).unwrap();
        let chip = MemoryChip::new(code, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        chip.read_burst(2..5, &mut rng, &mut BurstScratch::new());
    }

    #[test]
    fn fault_model_accessor_returns_configured_model() {
        let mut chip = chip_with_faults(&[], 0.0);
        let model = FaultModel::uniform(&[1, 2, 3], 0.25);
        chip.set_fault_model(0, model.clone());
        assert_eq!(chip.fault_model(0), &model);
        assert_eq!(chip.num_words(), 1);
    }
}
