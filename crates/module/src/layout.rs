//! Secondary-ECC word layouts and the correction capability each requires.
//!
//! §6.3 of the paper: "the layout of secondary ECC words [must] account for
//! the layout of on-die ECC words: the two must combine in such a way that
//! every on-die ECC word is protected with the necessary correction
//! capability by the secondary ECC." Once HARP's active phase has identified
//! every bit at risk of direct error, each on-die ECC word can contribute at
//! most `t` (its correction capability) concurrent indirect errors — so the
//! capability a secondary ECC word needs is `t` times the number of distinct
//! on-die ECC words whose data bits it covers.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::geometry::ModuleGeometry;

/// How secondary ECC words are laid out over the cache line, relative to the
/// on-die ECC words beneath them (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecondaryLayout {
    /// One secondary ECC word per on-die ECC word, exactly aligned with it.
    /// Minimises the required correction capability but needs the controller
    /// to gather each on-die word across several beats before checking it.
    PerOnDieWord,
    /// One secondary ECC word per data beat (the natural choice when ECC
    /// check bits travel on extra bus pins): each secondary word slices
    /// across every chip in the rank.
    PerBeat,
    /// A single secondary ECC word covering the whole cache line — the
    /// "interleaving secondary ECC words across multiple on-die ECC words"
    /// option, which requires the strongest code.
    PerCacheLine,
}

impl SecondaryLayout {
    /// All layouts analysed in the extension experiment.
    pub const ALL: [SecondaryLayout; 3] = [
        SecondaryLayout::PerOnDieWord,
        SecondaryLayout::PerBeat,
        SecondaryLayout::PerCacheLine,
    ];

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SecondaryLayout::PerOnDieWord => "per-on-die-word",
            SecondaryLayout::PerBeat => "per-beat",
            SecondaryLayout::PerCacheLine => "per-cache-line",
        }
    }

    /// The groups of cache-line bit indices that form each secondary ECC
    /// word under this layout.
    pub fn secondary_words(&self, geometry: &ModuleGeometry) -> Vec<Vec<usize>> {
        let line_bits = geometry.line_bits();
        match self {
            SecondaryLayout::PerOnDieWord => {
                let words = geometry.ondie_words_per_access();
                let mut groups = vec![Vec::new(); words];
                for bit in 0..line_bits {
                    let location = geometry.locate(bit);
                    let index =
                        location.chip * geometry.ondie_words_per_chip() + location.ondie_word;
                    groups[index].push(bit);
                }
                groups
            }
            SecondaryLayout::PerBeat => {
                let mut groups = vec![Vec::new(); geometry.burst_length()];
                for bit in 0..line_bits {
                    groups[geometry.locate(bit).beat].push(bit);
                }
                groups
            }
            SecondaryLayout::PerCacheLine => vec![(0..line_bits).collect()],
        }
    }

    /// The number of distinct on-die ECC words the largest secondary word
    /// overlaps under this layout.
    pub fn max_ondie_words_overlapped(&self, geometry: &ModuleGeometry) -> usize {
        self.secondary_words(geometry)
            .iter()
            .map(|group| {
                group
                    .iter()
                    .map(|&bit| {
                        let location = geometry.locate(bit);
                        (location.chip, location.ondie_word)
                    })
                    .collect::<BTreeSet<_>>()
                    .len()
            })
            .max()
            .unwrap_or(0)
    }

    /// The correction capability each secondary ECC word needs so that
    /// reactive profiling stays safe after HARP's active phase, given that
    /// every on-die ECC word can still produce up to `ondie_capability`
    /// concurrent indirect errors.
    pub fn required_capability(&self, geometry: &ModuleGeometry, ondie_capability: usize) -> usize {
        self.max_ondie_words_overlapped(geometry) * ondie_capability
    }

    /// The number of secondary ECC words per access under this layout.
    pub fn words_per_access(&self, geometry: &ModuleGeometry) -> usize {
        self.secondary_words(geometry).len()
    }

    /// Approximate parity overhead (in bits per cache line) of provisioning
    /// each secondary word with a code of the required capability, using the
    /// BCH bound of `capability · ceil(log2(word bits) + 1)` parity bits per
    /// word — the standard first-order estimate for comparing layouts.
    pub fn parity_overhead_bits(
        &self,
        geometry: &ModuleGeometry,
        ondie_capability: usize,
    ) -> usize {
        let capability = self.required_capability(geometry, ondie_capability);
        self.secondary_words(geometry)
            .iter()
            .map(|group| {
                let m = (usize::BITS - group.len().leading_zeros()) as usize + 1;
                capability * m
            })
            .sum()
    }
}

impl std::fmt::Display for SecondaryLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_cache_line() {
        for geometry in [
            ModuleGeometry::ddr4_style_rank(),
            ModuleGeometry::lpddr4_x16(),
            ModuleGeometry::ddr5_style_subchannel(),
        ] {
            for layout in SecondaryLayout::ALL {
                let groups = layout.secondary_words(&geometry);
                let mut seen = BTreeSet::new();
                for group in &groups {
                    for &bit in group {
                        assert!(seen.insert(bit), "{layout} duplicates bit {bit}");
                    }
                }
                assert_eq!(seen.len(), geometry.line_bits(), "{layout} misses bits");
            }
        }
    }

    #[test]
    fn aligned_layout_needs_only_on_die_capability() {
        for geometry in [
            ModuleGeometry::ddr4_style_rank(),
            ModuleGeometry::lpddr4_x16(),
            ModuleGeometry::single_chip_64(),
        ] {
            assert_eq!(
                SecondaryLayout::PerOnDieWord.required_capability(&geometry, 1),
                1
            );
            assert_eq!(
                SecondaryLayout::PerOnDieWord.required_capability(&geometry, 2),
                2
            );
        }
    }

    #[test]
    fn per_beat_layout_scales_with_chip_count() {
        let ddr4 = ModuleGeometry::ddr4_style_rank();
        // Each beat slices across all 8 chips, one on-die word per chip.
        assert_eq!(SecondaryLayout::PerBeat.required_capability(&ddr4, 1), 8);
        let single = ModuleGeometry::single_chip_64();
        assert_eq!(SecondaryLayout::PerBeat.required_capability(&single, 1), 1);
    }

    #[test]
    fn per_cache_line_layout_needs_the_most_capability() {
        let ddr4 = ModuleGeometry::ddr4_style_rank();
        assert_eq!(
            SecondaryLayout::PerCacheLine.required_capability(&ddr4, 1),
            8
        );
        let lpddr4 = ModuleGeometry::lpddr4_x16();
        // Two on-die words behind a single chip.
        assert_eq!(
            SecondaryLayout::PerCacheLine.required_capability(&lpddr4, 1),
            2
        );
        for geometry in [ddr4, lpddr4] {
            let interleaved = SecondaryLayout::PerCacheLine.required_capability(&geometry, 1);
            for layout in SecondaryLayout::ALL {
                assert!(interleaved >= layout.required_capability(&geometry, 1));
            }
        }
    }

    #[test]
    fn word_counts_match_the_layout() {
        let ddr4 = ModuleGeometry::ddr4_style_rank();
        assert_eq!(SecondaryLayout::PerOnDieWord.words_per_access(&ddr4), 8);
        assert_eq!(SecondaryLayout::PerBeat.words_per_access(&ddr4), 8);
        assert_eq!(SecondaryLayout::PerCacheLine.words_per_access(&ddr4), 1);
    }

    #[test]
    fn parity_overhead_reflects_required_strength() {
        let ddr4 = ModuleGeometry::ddr4_style_rank();
        let aligned = SecondaryLayout::PerOnDieWord.parity_overhead_bits(&ddr4, 1);
        let interleaved = SecondaryLayout::PerCacheLine.parity_overhead_bits(&ddr4, 1);
        assert!(aligned > 0);
        // A single 8-error-correcting word costs more parity than eight
        // single-error-correcting words here.
        assert!(interleaved > aligned / 8);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SecondaryLayout::PerOnDieWord.to_string(), "per-on-die-word");
        assert_eq!(SecondaryLayout::PerBeat.name(), "per-beat");
        assert_eq!(SecondaryLayout::PerCacheLine.name(), "per-cache-line");
    }
}
