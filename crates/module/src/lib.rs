//! Multi-chip memory-module architecture for the HARP reproduction.
//!
//! The paper's evaluation assumes the memory controller interfaces with a
//! single memory chip at a time (as in some LPDDR4 systems), but §6.3 points
//! out that real systems may spread a data block across several chips and
//! several data transfers, and that the *layout* of secondary ECC words with
//! respect to on-die ECC words decides how strong the secondary ECC has to
//! be. This crate makes that discussion executable:
//!
//! * [`ModuleGeometry`] — chips per rank, per-chip I/O width, burst length,
//!   and on-die ECC word size, with the standard burst mapping from
//!   cache-line bits to (chip, on-die word, bit) coordinates;
//! * [`SecondaryLayout`] — the three secondary-ECC word layouts discussed in
//!   §6.3 (aligned to on-die words, per data beat, or one word per cache
//!   line), with the exact correction capability each requires once HARP's
//!   active phase has bounded every on-die word to at most `t` concurrent
//!   indirect errors;
//! * [`MemoryModule`] — a rank of [`harp_memsim::MemoryChip`]s (generic over
//!   the per-chip [`harp_ecc::LinearBlockCode`]) behind a single
//!   controller-facing read/write interface, including the bypass read path
//!   HARP's active profiling phase uses. Line reads run one chip-level burst
//!   per chip per access and assemble the line through a precomputed
//!   [`BitInterleaveMap`]; `read_scalar`/`read_bypass_scalar` keep the
//!   word-at-a-time reference implementation.
//!
//! # Quickstart
//!
//! ```
//! use harp_module::{ModuleGeometry, SecondaryLayout};
//!
//! // A DDR4-style rank: 8 chips × 8 I/O pins × burst 8 = 512-bit lines.
//! let geometry = ModuleGeometry::ddr4_style_rank();
//! // Aligning secondary ECC words with on-die ECC words needs only
//! // single-error correction...
//! assert_eq!(SecondaryLayout::PerOnDieWord.required_capability(&geometry, 1), 1);
//! // ...but one secondary word across the whole cache line must tolerate an
//! // indirect error from every chip simultaneously.
//! assert_eq!(SecondaryLayout::PerCacheLine.required_capability(&geometry, 1), 8);
//! ```

pub mod geometry;
pub mod layout;
pub mod module;

pub use geometry::{BitInterleaveMap, BitLocation, ModuleGeometry};
pub use layout::SecondaryLayout;
pub use module::{MemoryModule, ModuleReadOutcome};
