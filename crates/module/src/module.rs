//! A rank of memory chips behind a single controller-facing interface.
//!
//! [`MemoryModule`] owns one [`MemoryChip`] per geometry slot, each running
//! its own (potentially different) proprietary on-die ECC code, and maps
//! whole cache lines onto per-chip on-die ECC words using the rank's burst
//! mapping. It exposes the same two read paths a HARP-enabled chip exposes —
//! the normal decoded path and the raw-data bypass path — so both profiling
//! phases can be exercised at module scale.

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::{FaultModel, MemoryChip};

use crate::geometry::ModuleGeometry;
use crate::layout::SecondaryLayout;

/// What the memory controller observes when reading one cache line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleReadOutcome {
    /// The post-correction cache line returned by the rank.
    pub data: BitVec,
    /// The cache line as originally written.
    pub written: BitVec,
    /// Cache-line bit positions where `data` differs from `written`
    /// (post-correction errors across all chips).
    pub post_correction_errors: Vec<usize>,
    /// The number of on-die ECC words whose decoder performed a correction
    /// operation during this read.
    pub corrections_performed: usize,
}

impl ModuleReadOutcome {
    /// Returns `true` if the line was returned exactly as written.
    pub fn is_clean(&self) -> bool {
        self.post_correction_errors.is_empty()
    }

    /// The largest number of post-correction errors that landed inside a
    /// single secondary ECC word under the given layout — what the secondary
    /// code must tolerate on this read.
    pub fn max_errors_in_secondary_word(
        &self,
        geometry: &ModuleGeometry,
        layout: SecondaryLayout,
    ) -> usize {
        layout
            .secondary_words(geometry)
            .iter()
            .map(|group| {
                group
                    .iter()
                    .filter(|bit| self.post_correction_errors.contains(bit))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }
}

/// A rank of memory chips with on-die ECC, addressed by cache line.
///
/// # Example
///
/// ```
/// use harp_ecc::HammingCode;
/// use harp_gf2::BitVec;
/// use harp_module::{MemoryModule, ModuleGeometry};
/// use rand::SeedableRng;
///
/// let geometry = ModuleGeometry::ddr4_style_rank();
/// let module = MemoryModule::homogeneous(geometry, 4, 7)?;
/// let mut module = module;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
///
/// let line = BitVec::ones(geometry.line_bits());
/// module.write(0, &line);
/// let outcome = module.read(0, &mut rng);
/// assert!(outcome.is_clean());
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModule {
    geometry: ModuleGeometry,
    chips: Vec<MemoryChip>,
    lines: usize,
}

impl MemoryModule {
    /// Builds a module whose chips all use independently drawn random codes
    /// of the geometry's on-die word size (manufacturers ship different
    /// proprietary codes; a rank mixes them freely).
    ///
    /// # Errors
    ///
    /// Returns a [`harp_ecc::CodeError`] if a code cannot be constructed.
    pub fn homogeneous(
        geometry: ModuleGeometry,
        lines: usize,
        seed: u64,
    ) -> Result<Self, harp_ecc::CodeError> {
        let codes = (0..geometry.chips())
            .map(|chip| HammingCode::random(geometry.ondie_word_bits(), seed ^ (chip as u64)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::with_codes(geometry, codes, lines))
    }

    /// Builds a module from explicit per-chip codes.
    ///
    /// # Panics
    ///
    /// Panics if the number of codes does not match the geometry's chip
    /// count, if any code's dataword length differs from the geometry's
    /// on-die word size, or if `lines` is zero.
    pub fn with_codes(geometry: ModuleGeometry, codes: Vec<HammingCode>, lines: usize) -> Self {
        assert_eq!(
            codes.len(),
            geometry.chips(),
            "expected one code per chip ({}), got {}",
            geometry.chips(),
            codes.len()
        );
        assert!(lines > 0, "a module needs at least one line");
        for code in &codes {
            assert_eq!(
                code.data_len(),
                geometry.ondie_word_bits(),
                "code dataword length {} does not match the geometry's on-die word size {}",
                code.data_len(),
                geometry.ondie_word_bits()
            );
        }
        let words_per_chip = lines * geometry.ondie_words_per_chip();
        let chips = codes
            .into_iter()
            .map(|code| MemoryChip::new(code, words_per_chip))
            .collect();
        Self {
            geometry,
            chips,
            lines,
        }
    }

    /// The rank geometry.
    pub fn geometry(&self) -> &ModuleGeometry {
        &self.geometry
    }

    /// Number of cache lines the module stores.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The chips in the rank.
    pub fn chips(&self) -> &[MemoryChip] {
        &self.chips
    }

    fn word_index(&self, line: usize, ondie_word: usize) -> usize {
        line * self.geometry.ondie_words_per_chip() + ondie_word
    }

    /// Sets the fault model of one on-die ECC word of one chip.
    ///
    /// # Panics
    ///
    /// Panics if the chip, line, or word index is out of range.
    pub fn set_fault_model(
        &mut self,
        chip: usize,
        line: usize,
        ondie_word: usize,
        model: FaultModel,
    ) {
        assert!(chip < self.chips.len(), "chip {chip} out of range");
        assert!(line < self.lines, "line {line} out of range");
        assert!(
            ondie_word < self.geometry.ondie_words_per_chip(),
            "on-die word {ondie_word} out of range"
        );
        let word = self.word_index(line, ondie_word);
        self.chips[chip].set_fault_model(word, model);
    }

    /// Writes a full cache line.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range or the data length does not
    /// match the geometry's line size.
    pub fn write(&mut self, line: usize, data: &BitVec) {
        assert!(line < self.lines, "line {line} out of range");
        assert_eq!(
            data.len(),
            self.geometry.line_bits(),
            "line data length mismatch: expected {}, got {}",
            self.geometry.line_bits(),
            data.len()
        );
        let word_bits = self.geometry.ondie_word_bits();
        let words_per_chip = self.geometry.ondie_words_per_chip();
        let mut per_word =
            vec![vec![BitVec::zeros(word_bits); words_per_chip]; self.geometry.chips()];
        for bit in 0..data.len() {
            let location = self.geometry.locate(bit);
            per_word[location.chip][location.ondie_word].set(location.bit_in_word, data.get(bit));
        }
        for (chip_index, words) in per_word.into_iter().enumerate() {
            for (word_index, word_data) in words.into_iter().enumerate() {
                let word = self.word_index(line, word_index);
                self.chips[chip_index].write(word, &word_data);
            }
        }
    }

    /// Reads a full cache line through the normal (on-die-ECC decoded) path,
    /// sampling raw errors from each word's fault model.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn read<R: Rng + ?Sized>(&self, line: usize, rng: &mut R) -> ModuleReadOutcome {
        self.read_internal(line, rng, false)
    }

    /// Reads a full cache line through the on-die-ECC *bypass* path, so the
    /// returned line contains the raw (pre-correction) data bits of every
    /// chip — the read HARP's active profiling phase uses.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn read_bypass<R: Rng + ?Sized>(&self, line: usize, rng: &mut R) -> ModuleReadOutcome {
        self.read_internal(line, rng, true)
    }

    fn read_internal<R: Rng + ?Sized>(
        &self,
        line: usize,
        rng: &mut R,
        bypass: bool,
    ) -> ModuleReadOutcome {
        assert!(line < self.lines, "line {line} out of range");
        let line_bits = self.geometry.line_bits();
        let mut data = BitVec::zeros(line_bits);
        let mut written = BitVec::zeros(line_bits);
        let mut corrections = 0;

        let words_per_chip = self.geometry.ondie_words_per_chip();
        for chip_index in 0..self.geometry.chips() {
            for ondie_word in 0..words_per_chip {
                let word = self.word_index(line, ondie_word);
                let observation = self.chips[chip_index].read(word, rng);
                if observation.decode_result().outcome.is_correction() {
                    corrections += 1;
                }
                let word_data = if bypass {
                    observation.raw_data_bits()
                } else {
                    observation.post_correction_data().clone()
                };
                for bit_in_word in 0..self.geometry.ondie_word_bits() {
                    let line_bit = self.geometry.line_bit_of(crate::geometry::BitLocation {
                        chip: chip_index,
                        ondie_word,
                        bit_in_word,
                        beat: 0, // recomputed by line_bit_of from the word coordinates
                    });
                    data.set(line_bit, word_data.get(bit_in_word));
                    written.set(line_bit, observation.written_data().get(bit_in_word));
                }
            }
        }

        let post_correction_errors = (&data ^ &written).iter_ones().collect();
        ModuleReadOutcome {
            data,
            written,
            post_correction_errors,
            corrections_performed: corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xD1E5)
    }

    fn patterned_line(bits: usize) -> BitVec {
        (0..bits).map(|i| i % 3 == 0).collect()
    }

    #[test]
    fn fault_free_round_trip_across_geometries() {
        for geometry in [
            ModuleGeometry::ddr4_style_rank(),
            ModuleGeometry::lpddr4_x16(),
            ModuleGeometry::ddr5_style_subchannel(),
            ModuleGeometry::single_chip_64(),
        ] {
            let mut module = MemoryModule::homogeneous(geometry, 2, 3).unwrap();
            let line = patterned_line(geometry.line_bits());
            module.write(1, &line);
            let outcome = module.read(1, &mut rng());
            assert!(outcome.is_clean(), "{geometry}");
            assert_eq!(outcome.data, line, "{geometry}");
            assert_eq!(outcome.corrections_performed, 0, "{geometry}");
        }
    }

    #[test]
    fn single_raw_error_per_chip_is_absorbed_by_on_die_ecc() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::homogeneous(geometry, 1, 11).unwrap();
        // One always-failing charged cell in every chip.
        for chip in 0..geometry.chips() {
            module.set_fault_model(chip, 0, 0, FaultModel::uniform(&[chip * 3], 1.0));
        }
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());
        assert!(outcome.is_clean());
        assert_eq!(outcome.corrections_performed, geometry.chips());
    }

    #[test]
    fn bypass_read_exposes_raw_errors_that_the_decoded_path_hides() {
        let geometry = ModuleGeometry::single_chip_64();
        let mut module = MemoryModule::homogeneous(geometry, 1, 5).unwrap();
        module.set_fault_model(0, 0, 0, FaultModel::uniform(&[7], 1.0));
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);

        let decoded = module.read(0, &mut rng());
        assert!(decoded.is_clean());

        let raw = module.read_bypass(0, &mut rng());
        assert_eq!(raw.post_correction_errors.len(), 1);
        // The raw error appears at the line position that maps to chip 0,
        // word 0, bit 7.
        let location = geometry.locate(raw.post_correction_errors[0]);
        assert_eq!(
            (location.chip, location.ondie_word, location.bit_in_word),
            (0, 0, 7)
        );
    }

    #[test]
    fn uncorrectable_errors_stay_confined_to_their_chip() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::homogeneous(geometry, 1, 21).unwrap();
        // Chip 3 word 0 has two always-failing cells: an uncorrectable
        // pattern for its SEC on-die ECC.
        module.set_fault_model(3, 0, 0, FaultModel::uniform(&[10, 20], 1.0));
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());
        assert!(!outcome.is_clean());
        for &bit in &outcome.post_correction_errors {
            assert_eq!(geometry.locate(bit).chip, 3);
        }
    }

    #[test]
    fn concurrent_miscorrections_stress_the_interleaved_layout_most() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::homogeneous(geometry, 1, 33).unwrap();
        // Every chip holds an uncorrectable double error.
        for chip in 0..geometry.chips() {
            module.set_fault_model(chip, 0, 0, FaultModel::uniform(&[1, 2], 1.0));
        }
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());

        let aligned =
            outcome.max_errors_in_secondary_word(&geometry, SecondaryLayout::PerOnDieWord);
        let interleaved =
            outcome.max_errors_in_secondary_word(&geometry, SecondaryLayout::PerCacheLine);
        // The interleaved layout sees the sum of every chip's errors; the
        // aligned layout sees only one chip's worth.
        assert!(interleaved >= aligned);
        assert_eq!(interleaved, outcome.post_correction_errors.len());
        assert!(aligned <= 3);
    }

    #[test]
    fn accessors_report_the_construction_parameters() {
        let geometry = ModuleGeometry::lpddr4_x16();
        let module = MemoryModule::homogeneous(geometry, 3, 1).unwrap();
        assert_eq!(module.lines(), 3);
        assert_eq!(module.geometry().chips(), 1);
        assert_eq!(module.chips().len(), 1);
    }

    #[test]
    #[should_panic(expected = "one code per chip")]
    fn mismatched_code_count_is_rejected() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let code = HammingCode::random(64, 0).unwrap();
        MemoryModule::with_codes(geometry, vec![code], 1);
    }

    #[test]
    #[should_panic(expected = "does not match the geometry")]
    fn mismatched_code_size_is_rejected() {
        let geometry = ModuleGeometry::single_chip_64();
        let code = HammingCode::random(32, 0).unwrap();
        MemoryModule::with_codes(geometry, vec![code], 1);
    }

    #[test]
    #[should_panic(expected = "line data length mismatch")]
    fn short_lines_are_rejected() {
        let geometry = ModuleGeometry::single_chip_64();
        let mut module = MemoryModule::homogeneous(geometry, 1, 0).unwrap();
        module.write(0, &BitVec::ones(32));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_line_is_rejected() {
        let geometry = ModuleGeometry::single_chip_64();
        let module = MemoryModule::homogeneous(geometry, 1, 0).unwrap();
        module.read(5, &mut rng());
    }
}
