//! A rank of memory chips behind a single controller-facing interface.
//!
//! [`MemoryModule`] owns one [`MemoryChip`] per geometry slot, each running
//! its own (potentially different) proprietary on-die ECC code — any
//! [`LinearBlockCode`], so a rank of SEC Hamming, SEC-DED, or DEC BCH chips
//! runs through the same model — and maps whole cache lines onto per-chip
//! on-die ECC words using the rank's burst mapping. It exposes the same two
//! read paths a HARP-enabled chip exposes — the normal decoded path and the
//! raw-data bypass path — so both profiling phases can be exercised at
//! module scale.
//!
//! Line reads run **one [`MemoryChip::read_burst`] per chip per line** (all
//! of a chip's on-die words for the access decoded through a single batched
//! bit-sliced syndrome-kernel pass with a clean-word mask fast path, buffers
//! persisted across reads) and assemble the
//! cache line through the geometry's precomputed
//! [`BitInterleaveMap`](crate::BitInterleaveMap) instead of re-deriving the
//! burst mapping per bit. [`MemoryModule::read_scalar`] and
//! [`MemoryModule::read_bypass_scalar`] keep the word-at-a-time,
//! `locate`-per-bit implementation as the byte-identical reference the
//! controller/module differential suite checks against.

use rand::Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};

use crate::geometry::{BitInterleaveMap, ModuleGeometry};
use crate::layout::SecondaryLayout;

/// Derives the on-die ECC code seed of one chip from the module seed with a
/// SplitMix64-style finalizer, so nearby module seeds (`s`, `s ^ 1`, `s + 1`,
/// …) produce unrelated per-chip code seeds. (A plain `seed ^ chip` made
/// modules seeded `s` and `s ^ 1` share chip codes pairwise.)
fn chip_code_seed(seed: u64, chip: u64) -> u64 {
    let mut z = seed.wrapping_add((chip + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the memory controller observes when reading one cache line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleReadOutcome {
    /// The post-correction cache line returned by the rank.
    pub data: BitVec,
    /// The cache line as originally written.
    pub written: BitVec,
    /// Cache-line bit positions where `data` differs from `written`
    /// (post-correction errors across all chips).
    pub post_correction_errors: Vec<usize>,
    /// The number of on-die ECC words whose decoder performed a correction
    /// operation during this read.
    pub corrections_performed: usize,
}

impl ModuleReadOutcome {
    /// Returns `true` if the line was returned exactly as written.
    pub fn is_clean(&self) -> bool {
        self.post_correction_errors.is_empty()
    }

    /// The largest number of post-correction errors that landed inside a
    /// single secondary ECC word under the given layout — what the secondary
    /// code must tolerate on this read.
    pub fn max_errors_in_secondary_word(
        &self,
        geometry: &ModuleGeometry,
        layout: SecondaryLayout,
    ) -> usize {
        layout
            .secondary_words(geometry)
            .iter()
            .map(|group| {
                group
                    .iter()
                    .filter(|bit| self.post_correction_errors.contains(bit))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }
}

/// A rank of memory chips with on-die ECC, addressed by cache line and
/// generic over the chips' code (default: the paper's SEC Hamming
/// configuration).
///
/// # Example
///
/// ```
/// use harp_ecc::HammingCode;
/// use harp_gf2::BitVec;
/// use harp_module::{MemoryModule, ModuleGeometry};
/// use rand::SeedableRng;
///
/// let geometry = ModuleGeometry::ddr4_style_rank();
/// let mut module = MemoryModule::heterogeneous(geometry, 4, 7)?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
///
/// let line = BitVec::ones(geometry.line_bits());
/// module.write(0, &line);
/// let outcome = module.read(0, &mut rng);
/// assert!(outcome.is_clean());
/// # Ok::<(), harp_ecc::CodeError>(())
/// ```
#[derive(Debug)]
pub struct MemoryModule<C: LinearBlockCode = HammingCode> {
    geometry: ModuleGeometry,
    interleave: BitInterleaveMap,
    chips: Vec<MemoryChip<C>>,
    lines: usize,
    /// Reusable burst buffers shared by the per-chip line bursts, persisted
    /// so steady-state line reads allocate nothing chip-side.
    scratch: BurstScratch,
}

impl<C: LinearBlockCode + Clone> Clone for MemoryModule<C> {
    fn clone(&self) -> Self {
        // The scratch is a pure buffer cache, so a clone starts with fresh
        // (lazily sized) buffers; read outcomes are unaffected.
        Self {
            geometry: self.geometry,
            interleave: self.interleave.clone(),
            chips: self.chips.clone(),
            lines: self.lines,
            scratch: BurstScratch::new(),
        }
    }
}

impl MemoryModule {
    /// Builds a module whose chips use independently drawn random SEC
    /// Hamming codes of the geometry's on-die word size (manufacturers ship
    /// different proprietary codes; a rank mixes them freely). Per-chip code
    /// seeds are derived with a SplitMix64-style mix, so nearby module seeds
    /// yield unrelated code sets.
    ///
    /// # Errors
    ///
    /// Returns a [`harp_ecc::CodeError`] if a code cannot be constructed.
    pub fn heterogeneous(
        geometry: ModuleGeometry,
        lines: usize,
        seed: u64,
    ) -> Result<Self, harp_ecc::CodeError> {
        Self::heterogeneous_with(geometry, lines, seed, |chip_seed| {
            HammingCode::random(geometry.ondie_word_bits(), chip_seed)
        })
    }
}

impl<C: LinearBlockCode> MemoryModule<C> {
    /// Builds a module whose chips use independent codes produced by
    /// `make_code`, invoked with one SplitMix64-derived seed per chip — the
    /// code-generic twin of [`MemoryModule::heterogeneous`].
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `make_code`.
    pub fn heterogeneous_with<E>(
        geometry: ModuleGeometry,
        lines: usize,
        seed: u64,
        mut make_code: impl FnMut(u64) -> Result<C, E>,
    ) -> Result<Self, E> {
        let codes = (0..geometry.chips())
            .map(|chip| make_code(chip_code_seed(seed, chip as u64)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::with_codes(geometry, codes, lines))
    }

    /// Builds a module from explicit per-chip codes.
    ///
    /// # Panics
    ///
    /// Panics if the number of codes does not match the geometry's chip
    /// count, if any code's dataword length differs from the geometry's
    /// on-die word size, or if `lines` is zero.
    pub fn with_codes(geometry: ModuleGeometry, codes: Vec<C>, lines: usize) -> Self {
        assert_eq!(
            codes.len(),
            geometry.chips(),
            "expected one code per chip ({}), got {}",
            geometry.chips(),
            codes.len()
        );
        assert!(lines > 0, "a module needs at least one line");
        for code in &codes {
            assert_eq!(
                code.data_len(),
                geometry.ondie_word_bits(),
                "code dataword length {} does not match the geometry's on-die word size {}",
                code.data_len(),
                geometry.ondie_word_bits()
            );
        }
        let words_per_chip = lines * geometry.ondie_words_per_chip();
        let chips = codes
            .into_iter()
            .map(|code| MemoryChip::new(code, words_per_chip))
            .collect();
        Self {
            geometry,
            interleave: geometry.bit_interleave(),
            chips,
            lines,
            scratch: BurstScratch::new(),
        }
    }

    /// The rank geometry.
    pub fn geometry(&self) -> &ModuleGeometry {
        &self.geometry
    }

    /// Number of cache lines the module stores.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// The chips in the rank.
    pub fn chips(&self) -> &[MemoryChip<C>] {
        &self.chips
    }

    /// The precomputed burst mapping the read paths index.
    pub fn bit_interleave(&self) -> &BitInterleaveMap {
        &self.interleave
    }

    fn word_index(&self, line: usize, ondie_word: usize) -> usize {
        line * self.geometry.ondie_words_per_chip() + ondie_word
    }

    /// Sets the fault model of one on-die ECC word of one chip.
    ///
    /// # Panics
    ///
    /// Panics if the chip, line, or word index is out of range.
    pub fn set_fault_model(
        &mut self,
        chip: usize,
        line: usize,
        ondie_word: usize,
        model: FaultModel,
    ) {
        assert!(chip < self.chips.len(), "chip {chip} out of range");
        assert!(line < self.lines, "line {line} out of range");
        assert!(
            ondie_word < self.geometry.ondie_words_per_chip(),
            "on-die word {ondie_word} out of range"
        );
        let word = self.word_index(line, ondie_word);
        self.chips[chip].set_fault_model(word, model);
    }

    /// Writes a full cache line.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range or the data length does not
    /// match the geometry's line size.
    pub fn write(&mut self, line: usize, data: &BitVec) {
        assert!(line < self.lines, "line {line} out of range");
        assert_eq!(
            data.len(),
            self.geometry.line_bits(),
            "line data length mismatch: expected {}, got {}",
            self.geometry.line_bits(),
            data.len()
        );
        let word_bits = self.geometry.ondie_word_bits();
        let words_per_chip = self.geometry.ondie_words_per_chip();
        let mut per_word =
            vec![vec![BitVec::zeros(word_bits); words_per_chip]; self.geometry.chips()];
        for bit in 0..data.len() {
            let location = self.geometry.locate(bit);
            per_word[location.chip][location.ondie_word].set(location.bit_in_word, data.get(bit));
        }
        for (chip_index, words) in per_word.into_iter().enumerate() {
            for (word_index, word_data) in words.into_iter().enumerate() {
                let word = self.word_index(line, word_index);
                self.chips[chip_index].write(word, &word_data);
            }
        }
    }

    /// Reads a full cache line through the normal (on-die-ECC decoded) path,
    /// sampling raw errors from each word's fault model.
    ///
    /// The chip phase of each chip's contribution runs as one
    /// [`MemoryChip::read_burst`] over the line's on-die words (single
    /// batched bit-sliced syndrome pass per chip with clean words
    /// short-circuited by mask, buffers persisted in the module), and
    /// the cache line is assembled through the precomputed
    /// [`BitInterleaveMap`]. Byte-identical to
    /// [`MemoryModule::read_scalar`], the word-at-a-time reference.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn read<R: Rng + ?Sized>(&mut self, line: usize, rng: &mut R) -> ModuleReadOutcome {
        self.read_burst_internal(line, rng, false)
    }

    /// Reads a full cache line through the on-die-ECC *bypass* path, so the
    /// returned line contains the raw (pre-correction) data bits of every
    /// chip — the read HARP's active profiling phase uses. Burst-routed like
    /// [`MemoryModule::read`]; byte-identical to
    /// [`MemoryModule::read_bypass_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn read_bypass<R: Rng + ?Sized>(&mut self, line: usize, rng: &mut R) -> ModuleReadOutcome {
        self.read_burst_internal(line, rng, true)
    }

    /// The scalar reference twin of [`MemoryModule::read`]: word-at-a-time
    /// chip reads and per-bit burst-mapping arithmetic, kept deliberately
    /// simple. The controller/module differential suite asserts the burst
    /// path reproduces it byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn read_scalar<R: Rng + ?Sized>(&self, line: usize, rng: &mut R) -> ModuleReadOutcome {
        self.read_scalar_internal(line, rng, false)
    }

    /// The scalar reference twin of [`MemoryModule::read_bypass`].
    ///
    /// # Panics
    ///
    /// Panics if the line index is out of range.
    pub fn read_bypass_scalar<R: Rng + ?Sized>(
        &self,
        line: usize,
        rng: &mut R,
    ) -> ModuleReadOutcome {
        self.read_scalar_internal(line, rng, true)
    }

    fn read_burst_internal<R: Rng + ?Sized>(
        &mut self,
        line: usize,
        rng: &mut R,
        bypass: bool,
    ) -> ModuleReadOutcome {
        assert!(line < self.lines, "line {line} out of range");
        let line_bits = self.geometry.line_bits();
        let mut data = BitVec::zeros(line_bits);
        let mut written = BitVec::zeros(line_bits);
        let mut corrections = 0;

        let words_per_chip = self.geometry.ondie_words_per_chip();
        let word_bits = self.geometry.ondie_word_bits();
        let first_word = line * words_per_chip;
        for (chip_index, chip) in self.chips.iter().enumerate() {
            // One burst covers every on-die word this chip contributes to the
            // line, consuming the RNG stream in the same word order as the
            // scalar reference loop.
            let observations = chip.read_burst(
                first_word..first_word + words_per_chip,
                rng,
                &mut self.scratch,
            );
            for (ondie_word, observation) in observations.iter().enumerate() {
                if observation.decode_result().outcome.is_correction() {
                    corrections += 1;
                }
                let bypass_bits;
                let word_data = if bypass {
                    bypass_bits = observation.raw_data_bits();
                    &bypass_bits
                } else {
                    observation.post_correction_data()
                };
                for bit_in_word in 0..word_bits {
                    let line_bit = self
                        .interleave
                        .line_bit(chip_index, ondie_word, bit_in_word);
                    data.set(line_bit, word_data.get(bit_in_word));
                    written.set(line_bit, observation.written_data().get(bit_in_word));
                }
            }
        }

        let post_correction_errors = (&data ^ &written).iter_ones().collect();
        ModuleReadOutcome {
            data,
            written,
            post_correction_errors,
            corrections_performed: corrections,
        }
    }

    fn read_scalar_internal<R: Rng + ?Sized>(
        &self,
        line: usize,
        rng: &mut R,
        bypass: bool,
    ) -> ModuleReadOutcome {
        assert!(line < self.lines, "line {line} out of range");
        let line_bits = self.geometry.line_bits();
        let mut data = BitVec::zeros(line_bits);
        let mut written = BitVec::zeros(line_bits);
        let mut corrections = 0;

        let words_per_chip = self.geometry.ondie_words_per_chip();
        for chip_index in 0..self.geometry.chips() {
            for ondie_word in 0..words_per_chip {
                let word = self.word_index(line, ondie_word);
                let observation = self.chips[chip_index].read(word, rng);
                if observation.decode_result().outcome.is_correction() {
                    corrections += 1;
                }
                let word_data = if bypass {
                    observation.raw_data_bits()
                } else {
                    observation.post_correction_data().clone()
                };
                for bit_in_word in 0..self.geometry.ondie_word_bits() {
                    let line_bit = self.geometry.line_bit_of(crate::geometry::BitLocation {
                        chip: chip_index,
                        ondie_word,
                        bit_in_word,
                        beat: 0, // recomputed by line_bit_of from the word coordinates
                    });
                    data.set(line_bit, word_data.get(bit_in_word));
                    written.set(line_bit, observation.written_data().get(bit_in_word));
                }
            }
        }

        let post_correction_errors = (&data ^ &written).iter_ones().collect();
        ModuleReadOutcome {
            data,
            written,
            post_correction_errors,
            corrections_performed: corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xD1E5)
    }

    fn patterned_line(bits: usize) -> BitVec {
        (0..bits).map(|i| i % 3 == 0).collect()
    }

    #[test]
    fn fault_free_round_trip_across_geometries() {
        for geometry in [
            ModuleGeometry::ddr4_style_rank(),
            ModuleGeometry::lpddr4_x16(),
            ModuleGeometry::ddr5_style_subchannel(),
            ModuleGeometry::single_chip_64(),
        ] {
            let mut module = MemoryModule::heterogeneous(geometry, 2, 3).unwrap();
            let line = patterned_line(geometry.line_bits());
            module.write(1, &line);
            let outcome = module.read(1, &mut rng());
            assert!(outcome.is_clean(), "{geometry}");
            assert_eq!(outcome.data, line, "{geometry}");
            assert_eq!(outcome.corrections_performed, 0, "{geometry}");
        }
    }

    #[test]
    fn single_raw_error_per_chip_is_absorbed_by_on_die_ecc() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 11).unwrap();
        // One always-failing charged cell in every chip.
        for chip in 0..geometry.chips() {
            module.set_fault_model(chip, 0, 0, FaultModel::uniform(&[chip * 3], 1.0));
        }
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());
        assert!(outcome.is_clean());
        assert_eq!(outcome.corrections_performed, geometry.chips());
    }

    #[test]
    fn bypass_read_exposes_raw_errors_that_the_decoded_path_hides() {
        let geometry = ModuleGeometry::single_chip_64();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 5).unwrap();
        module.set_fault_model(0, 0, 0, FaultModel::uniform(&[7], 1.0));
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);

        let decoded = module.read(0, &mut rng());
        assert!(decoded.is_clean());

        let raw = module.read_bypass(0, &mut rng());
        assert_eq!(raw.post_correction_errors.len(), 1);
        // The raw error appears at the line position that maps to chip 0,
        // word 0, bit 7.
        let location = geometry.locate(raw.post_correction_errors[0]);
        assert_eq!(
            (location.chip, location.ondie_word, location.bit_in_word),
            (0, 0, 7)
        );
    }

    #[test]
    fn uncorrectable_errors_stay_confined_to_their_chip() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 21).unwrap();
        // Chip 3 word 0 has two always-failing cells: an uncorrectable
        // pattern for its SEC on-die ECC.
        module.set_fault_model(3, 0, 0, FaultModel::uniform(&[10, 20], 1.0));
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());
        assert!(!outcome.is_clean());
        for &bit in &outcome.post_correction_errors {
            assert_eq!(geometry.locate(bit).chip, 3);
        }
    }

    #[test]
    fn concurrent_miscorrections_stress_the_interleaved_layout_most() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 33).unwrap();
        // Every chip holds an uncorrectable double error.
        for chip in 0..geometry.chips() {
            module.set_fault_model(chip, 0, 0, FaultModel::uniform(&[1, 2], 1.0));
        }
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());

        let aligned =
            outcome.max_errors_in_secondary_word(&geometry, SecondaryLayout::PerOnDieWord);
        let interleaved =
            outcome.max_errors_in_secondary_word(&geometry, SecondaryLayout::PerCacheLine);
        // The interleaved layout sees the sum of every chip's errors; the
        // aligned layout sees only one chip's worth.
        assert!(interleaved >= aligned);
        assert_eq!(interleaved, outcome.post_correction_errors.len());
        assert!(aligned <= 3);
    }

    #[test]
    fn accessors_report_the_construction_parameters() {
        let geometry = ModuleGeometry::lpddr4_x16();
        let module = MemoryModule::heterogeneous(geometry, 3, 1).unwrap();
        assert_eq!(module.lines(), 3);
        assert_eq!(module.geometry().chips(), 1);
        assert_eq!(module.chips().len(), 1);
    }

    #[test]
    #[should_panic(expected = "one code per chip")]
    fn mismatched_code_count_is_rejected() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        let code = HammingCode::random(64, 0).unwrap();
        MemoryModule::with_codes(geometry, vec![code], 1);
    }

    #[test]
    #[should_panic(expected = "does not match the geometry")]
    fn mismatched_code_size_is_rejected() {
        let geometry = ModuleGeometry::single_chip_64();
        let code = HammingCode::random(32, 0).unwrap();
        MemoryModule::with_codes(geometry, vec![code], 1);
    }

    #[test]
    #[should_panic(expected = "line data length mismatch")]
    fn short_lines_are_rejected() {
        let geometry = ModuleGeometry::single_chip_64();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 0).unwrap();
        module.write(0, &BitVec::ones(32));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_line_is_rejected() {
        let geometry = ModuleGeometry::single_chip_64();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 0).unwrap();
        module.read(5, &mut rng());
    }

    #[test]
    fn burst_reads_match_the_scalar_reference_on_both_paths() {
        for geometry in [
            ModuleGeometry::ddr4_style_rank(),
            ModuleGeometry::lpddr4_x16(),
            ModuleGeometry::ddr5_style_subchannel(),
        ] {
            let mut module = MemoryModule::heterogeneous(geometry, 2, 91).unwrap();
            // A mix of clean words, correctable errors, an uncorrectable
            // pair, and a probabilistic cell.
            module.set_fault_model(0, 1, 0, FaultModel::uniform(&[4], 1.0));
            let last_chip = geometry.chips() - 1;
            module.set_fault_model(last_chip, 1, 0, FaultModel::uniform(&[10, 20], 1.0));
            module.set_fault_model(last_chip, 0, 0, FaultModel::uniform(&[7], 0.5));
            for line in 0..2 {
                module.write(line, &patterned_line(geometry.line_bits()));
            }

            let mut scalar_rng = rng();
            let mut burst_rng = rng();
            for _round in 0..4 {
                for line in 0..2 {
                    let scalar = module.read_scalar(line, &mut scalar_rng);
                    let burst = module.read(line, &mut burst_rng);
                    assert_eq!(burst, scalar, "decoded path, {geometry}");
                    let scalar = module.read_bypass_scalar(line, &mut scalar_rng);
                    let burst = module.read_bypass(line, &mut burst_rng);
                    assert_eq!(burst, scalar, "bypass path, {geometry}");
                }
            }
        }
    }

    #[test]
    fn modules_are_generic_over_the_code() {
        // A rank of SEC-DED chips: an uncorrectable pair is *detected*
        // instead of miscorrected, so exactly the two raw errors surface.
        let geometry = ModuleGeometry::ddr4_style_rank();
        let mut module = MemoryModule::heterogeneous_with(geometry, 1, 7, |seed| {
            harp_ecc::ExtendedHammingCode::random(geometry.ondie_word_bits(), seed)
        })
        .unwrap();
        module.set_fault_model(2, 0, 0, FaultModel::uniform(&[10, 20], 1.0));
        let line = BitVec::ones(geometry.line_bits());
        module.write(0, &line);
        let outcome = module.read(0, &mut rng());
        assert_eq!(outcome.post_correction_errors.len(), 2);
        assert_eq!(outcome.corrections_performed, 0);
        for &bit in &outcome.post_correction_errors {
            assert_eq!(geometry.locate(bit).chip, 2);
        }
    }

    #[test]
    fn nearby_module_seeds_produce_unrelated_chip_codes() {
        // Regression: `seed ^ chip` as the per-chip code seed made modules
        // seeded `s` and `s ^ 1` share their chip codes pairwise (chip 0 of
        // one was chip 1 of the other).
        let geometry = ModuleGeometry::ddr4_style_rank();
        for (a, b) in [(3u64, 2u64), (3, 4), (0, 1)] {
            let left = MemoryModule::heterogeneous(geometry, 1, a).unwrap();
            let right = MemoryModule::heterogeneous(geometry, 1, b).unwrap();
            for (i, left_chip) in left.chips().iter().enumerate() {
                for (j, right_chip) in right.chips().iter().enumerate() {
                    assert_ne!(
                        left_chip.code(),
                        right_chip.code(),
                        "seeds {a}/{b}: chip {i} and chip {j} collide"
                    );
                }
            }
        }
    }

    #[test]
    fn heterogeneous_delegates_to_the_generic_constructor() {
        // `heterogeneous` is the ergonomic front of `heterogeneous_with`:
        // both must derive identical per-chip codes from the same seed.
        let geometry = ModuleGeometry::single_chip_64();
        let direct = MemoryModule::heterogeneous(geometry, 1, 5).unwrap();
        let via_generic = MemoryModule::heterogeneous_with(geometry, 1, 5, |chip_seed| {
            HammingCode::random(geometry.ondie_word_bits(), chip_seed)
        })
        .unwrap();
        assert_eq!(direct.chips()[0].code(), via_generic.chips()[0].code());
    }

    #[test]
    fn cloned_modules_read_identically() {
        let geometry = ModuleGeometry::lpddr4_x16();
        let mut module = MemoryModule::heterogeneous(geometry, 1, 13).unwrap();
        module.set_fault_model(0, 0, 1, FaultModel::uniform(&[3, 9], 0.5));
        module.write(0, &BitVec::ones(geometry.line_bits()));
        let mut clone = module.clone();
        let mut rng_a = rng();
        let mut rng_b = rng();
        for _ in 0..4 {
            assert_eq!(module.read(0, &mut rng_a), clone.read(0, &mut rng_b));
        }
    }
}
