//! Rank geometry and the burst mapping from cache-line bits to chips and
//! on-die ECC words.
//!
//! A memory access transfers a cache line as `burst_length` beats; each beat
//! carries `io_width` bits from every chip in the rank. Inside each chip the
//! bits received across the burst are grouped into on-die ECC words of
//! `ondie_word_bits` data bits. The mapping below is the standard
//! "chip-interleaved, beat-major" arrangement used by commodity DDR ranks.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Where a cache-line bit lives inside the rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitLocation {
    /// Which chip in the rank drives the bit.
    pub chip: usize,
    /// Which on-die ECC word (within this access) the bit belongs to.
    pub ondie_word: usize,
    /// The data-bit index within that on-die ECC word.
    pub bit_in_word: usize,
    /// The beat (data transfer) the bit travels on.
    pub beat: usize,
}

/// The physical organisation of one rank of memory chips.
///
/// # Example
///
/// ```
/// use harp_module::ModuleGeometry;
///
/// let geometry = ModuleGeometry::new(8, 8, 8, 64).unwrap();
/// assert_eq!(geometry.line_bits(), 512);
/// assert_eq!(geometry.ondie_words_per_chip(), 1);
/// assert_eq!(geometry.ondie_words_per_access(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModuleGeometry {
    chips: usize,
    io_width: usize,
    burst_length: usize,
    ondie_word_bits: usize,
}

impl ModuleGeometry {
    /// Creates a geometry, validating that the per-chip burst payload divides
    /// evenly into on-die ECC words.
    ///
    /// Returns `None` if any parameter is zero or if
    /// `io_width · burst_length` is not a multiple of `ondie_word_bits`, or
    /// if `ondie_word_bits` is not a multiple of `io_width` (an on-die word
    /// must span whole beats of its chip for the beat layout to be
    /// well-defined).
    pub fn new(
        chips: usize,
        io_width: usize,
        burst_length: usize,
        ondie_word_bits: usize,
    ) -> Option<Self> {
        if chips == 0 || io_width == 0 || burst_length == 0 || ondie_word_bits == 0 {
            return None;
        }
        let per_chip = io_width * burst_length;
        if !per_chip.is_multiple_of(ondie_word_bits) || !ondie_word_bits.is_multiple_of(io_width) {
            return None;
        }
        Some(Self {
            chips,
            io_width,
            burst_length,
            ondie_word_bits,
        })
    }

    /// The single-chip LPDDR4-style configuration the paper evaluates: one
    /// ×16 chip, burst 16, 128-bit on-die ECC words (a (136, 128) code).
    pub fn lpddr4_x16() -> Self {
        Self::new(1, 16, 16, 128).expect("static geometry is valid")
    }

    /// The paper's simulated configuration: a single chip delivering one
    /// 64-bit on-die ECC word (a (71, 64) code) per access.
    pub fn single_chip_64() -> Self {
        Self::new(1, 8, 8, 64).expect("static geometry is valid")
    }

    /// A DDR4-style rank: 8 × ×8 chips, burst 8, 64-bit on-die ECC words.
    pub fn ddr4_style_rank() -> Self {
        Self::new(8, 8, 8, 64).expect("static geometry is valid")
    }

    /// A DDR5-style sub-channel: 4 × ×4 chips, burst 16, 64-bit on-die words.
    pub fn ddr5_style_subchannel() -> Self {
        Self::new(4, 4, 16, 64).expect("static geometry is valid")
    }

    /// Number of chips in the rank.
    pub fn chips(&self) -> usize {
        self.chips
    }

    /// I/O width (bits per beat) of each chip.
    pub fn io_width(&self) -> usize {
        self.io_width
    }

    /// Number of beats per access.
    pub fn burst_length(&self) -> usize {
        self.burst_length
    }

    /// Data bits per on-die ECC word.
    pub fn ondie_word_bits(&self) -> usize {
        self.ondie_word_bits
    }

    /// Total data bits transferred per access (the cache-line size).
    pub fn line_bits(&self) -> usize {
        self.chips * self.io_width * self.burst_length
    }

    /// Data bits each chip contributes per access.
    pub fn bits_per_chip(&self) -> usize {
        self.io_width * self.burst_length
    }

    /// On-die ECC words each chip contributes per access.
    pub fn ondie_words_per_chip(&self) -> usize {
        self.bits_per_chip() / self.ondie_word_bits
    }

    /// Total on-die ECC words involved in one access.
    pub fn ondie_words_per_access(&self) -> usize {
        self.chips * self.ondie_words_per_chip()
    }

    /// Beats spanned by a single on-die ECC word of one chip.
    pub fn beats_per_ondie_word(&self) -> usize {
        self.ondie_word_bits / self.io_width
    }

    /// Maps a cache-line bit index to its physical location.
    ///
    /// The mapping is beat-major and chip-interleaved: consecutive line bits
    /// fill one beat across all chips before moving to the next beat, which
    /// is how commodity ranks stripe data across the bus.
    ///
    /// # Panics
    ///
    /// Panics if `line_bit >= line_bits()`.
    pub fn locate(&self, line_bit: usize) -> BitLocation {
        assert!(
            line_bit < self.line_bits(),
            "line bit {line_bit} out of range {}",
            self.line_bits()
        );
        let bits_per_beat = self.chips * self.io_width;
        let beat = line_bit / bits_per_beat;
        let within_beat = line_bit % bits_per_beat;
        let chip = within_beat / self.io_width;
        let pin = within_beat % self.io_width;
        let chip_local = beat * self.io_width + pin;
        BitLocation {
            chip,
            ondie_word: chip_local / self.ondie_word_bits,
            bit_in_word: chip_local % self.ondie_word_bits,
            beat,
        }
    }

    /// The inverse of [`Self::locate`]: the cache-line bit index of a
    /// physical location.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside this geometry.
    pub fn line_bit_of(&self, location: BitLocation) -> usize {
        assert!(
            location.chip < self.chips,
            "chip {} out of range",
            location.chip
        );
        assert!(
            location.ondie_word < self.ondie_words_per_chip(),
            "on-die word {} out of range",
            location.ondie_word
        );
        assert!(
            location.bit_in_word < self.ondie_word_bits,
            "bit {} out of range",
            location.bit_in_word
        );
        let chip_local = location.ondie_word * self.ondie_word_bits + location.bit_in_word;
        let beat = chip_local / self.io_width;
        let pin = chip_local % self.io_width;
        beat * self.chips * self.io_width + location.chip * self.io_width + pin
    }
}

/// A precomputed, bidirectional form of the burst mapping: every
/// ([`ModuleGeometry::locate`], [`ModuleGeometry::line_bit_of`]) answer for
/// one geometry, tabulated once.
///
/// The per-bit mapping arithmetic is cheap but sits inside the innermost
/// loop of every module-level line read (`line_bits` lookups per access), so
/// [`crate::MemoryModule`] caches one of these at construction and the burst
/// read path indexes it directly.
///
/// # Example
///
/// ```
/// use harp_module::ModuleGeometry;
///
/// let geometry = ModuleGeometry::ddr4_style_rank();
/// let map = geometry.bit_interleave();
/// for bit in 0..geometry.line_bits() {
///     let location = geometry.locate(bit);
///     assert_eq!(map.locate(bit), location);
///     assert_eq!(
///         map.line_bit(location.chip, location.ondie_word, location.bit_in_word),
///         bit
///     );
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitInterleaveMap {
    geometry: ModuleGeometry,
    /// Chip-major inverse mapping: index
    /// `chip · bits_per_chip + ondie_word · ondie_word_bits + bit_in_word`
    /// holds the cache-line bit driven by that physical location.
    to_line: Vec<usize>,
    /// Forward mapping: index `line_bit` holds its physical location.
    to_location: Vec<BitLocation>,
}

impl BitInterleaveMap {
    fn new(geometry: ModuleGeometry) -> Self {
        let line_bits = geometry.line_bits();
        let mut to_line = vec![0usize; line_bits];
        let mut to_location = Vec::with_capacity(line_bits);
        for bit in 0..line_bits {
            let location = geometry.locate(bit);
            let chip_local =
                location.ondie_word * geometry.ondie_word_bits() + location.bit_in_word;
            to_line[location.chip * geometry.bits_per_chip() + chip_local] = bit;
            to_location.push(location);
        }
        Self {
            geometry,
            to_line,
            to_location,
        }
    }

    /// The geometry this map was built for.
    pub fn geometry(&self) -> &ModuleGeometry {
        &self.geometry
    }

    /// The cache-line bit driven by `(chip, ondie_word, bit_in_word)` — the
    /// tabulated [`ModuleGeometry::line_bit_of`].
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the geometry.
    pub fn line_bit(&self, chip: usize, ondie_word: usize, bit_in_word: usize) -> usize {
        assert!(
            chip < self.geometry.chips()
                && ondie_word < self.geometry.ondie_words_per_chip()
                && bit_in_word < self.geometry.ondie_word_bits(),
            "location ({chip}, {ondie_word}, {bit_in_word}) outside {}",
            self.geometry
        );
        let chip_local = ondie_word * self.geometry.ondie_word_bits() + bit_in_word;
        self.to_line[chip * self.geometry.bits_per_chip() + chip_local]
    }

    /// The physical location of a cache-line bit — the tabulated
    /// [`ModuleGeometry::locate`].
    ///
    /// # Panics
    ///
    /// Panics if `line_bit >= line_bits()`.
    pub fn locate(&self, line_bit: usize) -> BitLocation {
        self.to_location[line_bit]
    }
}

impl ModuleGeometry {
    /// Tabulates the burst mapping into a [`BitInterleaveMap`] (both
    /// directions, one entry per cache-line bit).
    pub fn bit_interleave(&self) -> BitInterleaveMap {
        BitInterleaveMap::new(*self)
    }
}

impl fmt::Display for ModuleGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} chip(s) x{} · BL{} · {}-bit on-die words",
            self.chips, self.io_width, self.burst_length, self.ondie_word_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_geometries_are_consistent() {
        let ddr4 = ModuleGeometry::ddr4_style_rank();
        assert_eq!(ddr4.line_bits(), 512);
        assert_eq!(ddr4.ondie_words_per_access(), 8);
        assert_eq!(ddr4.beats_per_ondie_word(), 8);

        let lpddr4 = ModuleGeometry::lpddr4_x16();
        assert_eq!(lpddr4.line_bits(), 256);
        assert_eq!(lpddr4.ondie_words_per_chip(), 2);

        let single = ModuleGeometry::single_chip_64();
        assert_eq!(single.line_bits(), 64);
        assert_eq!(single.ondie_words_per_access(), 1);

        let ddr5 = ModuleGeometry::ddr5_style_subchannel();
        assert_eq!(ddr5.line_bits(), 256);
        assert_eq!(ddr5.ondie_words_per_access(), 4);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert!(ModuleGeometry::new(0, 8, 8, 64).is_none());
        assert!(ModuleGeometry::new(8, 0, 8, 64).is_none());
        assert!(ModuleGeometry::new(8, 8, 0, 64).is_none());
        assert!(ModuleGeometry::new(8, 8, 8, 0).is_none());
        // Payload does not divide into on-die words.
        assert!(ModuleGeometry::new(1, 8, 8, 48).is_none());
        // On-die word does not span whole beats.
        assert!(ModuleGeometry::new(1, 16, 16, 40).is_none());
    }

    #[test]
    fn locate_and_line_bit_of_are_inverse_bijections() {
        for geometry in [
            ModuleGeometry::ddr4_style_rank(),
            ModuleGeometry::lpddr4_x16(),
            ModuleGeometry::ddr5_style_subchannel(),
            ModuleGeometry::single_chip_64(),
        ] {
            let mut seen = std::collections::BTreeSet::new();
            for bit in 0..geometry.line_bits() {
                let location = geometry.locate(bit);
                assert_eq!(geometry.line_bit_of(location), bit, "{geometry}");
                seen.insert((location.chip, location.ondie_word, location.bit_in_word));
            }
            assert_eq!(seen.len(), geometry.line_bits(), "{geometry}");
        }
    }

    #[test]
    fn consecutive_line_bits_interleave_across_chips() {
        let geometry = ModuleGeometry::ddr4_style_rank();
        // First 8 bits belong to chip 0 (its 8 pins on beat 0), next 8 to
        // chip 1, and so on.
        assert_eq!(geometry.locate(0).chip, 0);
        assert_eq!(geometry.locate(7).chip, 0);
        assert_eq!(geometry.locate(8).chip, 1);
        assert_eq!(geometry.locate(63).chip, 7);
        // The next beat wraps back to chip 0.
        let next_beat = geometry.locate(64);
        assert_eq!(next_beat.chip, 0);
        assert_eq!(next_beat.beat, 1);
    }

    #[test]
    fn each_ondie_word_spans_whole_beats() {
        let geometry = ModuleGeometry::lpddr4_x16();
        for bit in 0..geometry.line_bits() {
            let location = geometry.locate(bit);
            // 128-bit words over 16 pins: word 0 occupies beats 0..8.
            assert_eq!(location.ondie_word, location.beat / 8);
        }
    }

    #[test]
    fn display_summarises_the_geometry() {
        assert_eq!(
            ModuleGeometry::ddr4_style_rank().to_string(),
            "8 chip(s) x8 · BL8 · 64-bit on-die words"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_out_of_range_bits() {
        ModuleGeometry::single_chip_64().locate(64);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arbitrary_geometry() -> impl Strategy<Value = ModuleGeometry> {
            (
                1usize..=8,
                proptest::sample::select(vec![4usize, 8, 16]),
                proptest::sample::select(vec![8usize, 16]),
                proptest::sample::select(vec![32usize, 64, 128]),
            )
                .prop_filter_map(
                    "geometry must be self-consistent",
                    |(chips, io, burst, word)| ModuleGeometry::new(chips, io, burst, word),
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            #[test]
            fn burst_mapping_is_a_bijection(geometry in arbitrary_geometry()) {
                let mut seen = std::collections::BTreeSet::new();
                for bit in 0..geometry.line_bits() {
                    let location = geometry.locate(bit);
                    prop_assert!(location.chip < geometry.chips());
                    prop_assert!(location.ondie_word < geometry.ondie_words_per_chip());
                    prop_assert!(location.bit_in_word < geometry.ondie_word_bits());
                    prop_assert!(location.beat < geometry.burst_length());
                    prop_assert_eq!(geometry.line_bit_of(location), bit);
                    seen.insert((location.chip, location.ondie_word, location.bit_in_word));
                }
                prop_assert_eq!(seen.len(), geometry.line_bits());
            }

            #[test]
            fn interleave_map_tabulates_the_mapping_exactly(geometry in arbitrary_geometry()) {
                let map = geometry.bit_interleave();
                prop_assert_eq!(map.geometry(), &geometry);
                for bit in 0..geometry.line_bits() {
                    let location = geometry.locate(bit);
                    prop_assert_eq!(map.locate(bit), location);
                    prop_assert_eq!(
                        map.line_bit(location.chip, location.ondie_word, location.bit_in_word),
                        bit
                    );
                }
            }

            #[test]
            fn layouts_always_partition_the_line(geometry in arbitrary_geometry()) {
                use crate::layout::SecondaryLayout;
                for layout in SecondaryLayout::ALL {
                    let groups = layout.secondary_words(&geometry);
                    let total: usize = groups.iter().map(Vec::len).sum();
                    prop_assert_eq!(total, geometry.line_bits());
                    // The interleaved layout always needs the most capability.
                    prop_assert!(
                        SecondaryLayout::PerCacheLine.required_capability(&geometry, 1)
                            >= layout.required_capability(&geometry, 1)
                    );
                }
            }
        }
    }
}
