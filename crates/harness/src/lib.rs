//! Workspace facade for the HARP reproduction.
//!
//! This crate exists to host the cross-crate integration tests under
//! `tests/` and the runnable walkthroughs under `examples/`; it re-exports
//! every layer of the stack so downstream code can depend on a single crate.
//!
//! Crate layering (see ROADMAP.md for the full architecture section):
//!
//! ```text
//! gf2 → ecc / bch → memsim / module → profiler / beer / controller → sim → bench / cli
//! ```

pub use harp_bch as bch;
pub use harp_beer as beer;
pub use harp_controller as controller;
pub use harp_ecc as ecc;
pub use harp_gf2 as gf2;
pub use harp_memsim as memsim;
pub use harp_module as module;
pub use harp_profiler as profiler;
pub use harp_sim as sim;
